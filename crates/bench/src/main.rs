//! Plain-timing component benchmarks.
//!
//! Replaces the former Criterion harness with `std::time::Instant`
//! wall-clock timing so the workspace needs no external dependencies.
//! Each component emits exactly one JSON line on stdout:
//!
//! ```json
//! {"component":"frame_sampler_batched_d5","iters":1,"total_ns":...,"per_iter_ns":...}
//! ```
//!
//! Headline measurements:
//!
//! * the batched Pauli-frame sampler against the scalar per-shot loop
//!   on the d=5 rotated surface code (10× target);
//! * per-stage BER-loop timings (`sample_ns` / `decode_ns` /
//!   `compare_ns`) for every decoder on its reference workload
//!   (`ber_stages_*` lines);
//! * the scratch-reusing Union-Find `decode_into` hot path against its
//!   allocating per-shot baseline (2× target, bit-identical output);
//! * the precomputed-path-oracle MWPM hot path against the per-shot
//!   Dijkstra fallback (3× target, bit-identical output), plus the
//!   oracle construction cost itself;
//! * the lazy sparse-path middle tier against the per-shot Dijkstra
//!   fallback on a hyperbolic DEM **above** the dense-oracle node
//!   guard (2× target, bit-identical output), plus the sparse index's
//!   memory footprint against the dense oracle's would-be O(V²).
//!
//! Run with `cargo run --release -p qec-bench`; pass `--shots 1000`
//! for the quick CI configuration (default 10 000). Every emitted
//! record is also collected and written to `BENCH_<PR>.json` at the
//! repo root, the start of the perf-trajectory history.

use fpn_core::prelude::*;
use qec_bench::{memory_experiment, small_fpn, small_hyperbolic_code};
use qec_group::{enumerate_cosets, von_dyck};
use qec_math::graph::matching::min_weight_perfect_matching;
use qec_math::rng::{Rng, Xoshiro256StarStar};
use qec_math::BitVec;
use qec_sim::FrameBatch;
use std::sync::Mutex;
use std::time::Instant;

/// Every record emitted so far, replayed into `BENCH_<PR>.json` at the
/// end of the run.
static RECORDS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Prints one JSON record line and keeps it for the `BENCH_<PR>.json`
/// artifact.
fn emit(record: String) {
    println!("{record}");
    RECORDS.lock().unwrap().push(record);
}

/// Writes every emitted record to `BENCH_<PR>.json` at the repo root
/// (resolved from the crate manifest, so the artifact lands in the
/// same place regardless of the invocation directory).
fn write_bench_json(shots: usize) {
    const PR: u32 = 4;
    let records = RECORDS.lock().unwrap();
    let body = records
        .iter()
        .map(|r| format!("    {r}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json =
        format!("{{\n  \"pr\": {PR},\n  \"shots\": {shots},\n  \"records\": [\n{body}\n  ]\n}}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_", "4", ".json");
    std::fs::write(path, json).expect("write BENCH json artifact");
    eprintln!("wrote {path}");
}

/// Times `iters` runs of `f`, keeping a liveness checksum so the work
/// cannot be optimized away, and emits one JSON line.
fn bench(component: &str, iters: usize, mut f: impl FnMut() -> usize) -> u128 {
    let start = Instant::now();
    let mut checksum = 0usize;
    for _ in 0..iters {
        checksum = checksum.wrapping_add(f());
    }
    let total_ns = start.elapsed().as_nanos();
    emit(format!(
        "{{\"component\":\"{component}\",\"iters\":{iters},\"total_ns\":{total_ns},\
         \"per_iter_ns\":{},\"checksum\":{checksum}}}",
        total_ns / iters.max(1) as u128,
    ));
    total_ns
}

fn bench_blossom() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(40);
    for &n in &[16usize, 40] {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v, rng.gen_range(1..1000i64)));
            }
        }
        bench(&format!("blossom_mwpm_complete_k{n}"), 20, || {
            min_weight_perfect_matching(n, &edges).unwrap().weight as usize
        });
    }
}

/// Batched vs. per-shot sampling on the d=5 planar code — the
/// acceptance measurement for the batched engine.
fn bench_sampling(shots: usize) {
    let code = rotated_surface_code(5);
    let fpn = FlagProxyNetwork::build(&code, &FpnConfig::direct());
    let exp = memory_experiment(&code, &fpn, 1e-3);
    let sampler = FrameSampler::new(&exp.circuit);
    let batches = shots.div_ceil(64);

    let mut scratch = FrameBatch::new();
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let batched_ns = bench("frame_sampler_batched_d5", 1, || {
        let mut fired = 0usize;
        for b in 0..batches {
            let mut rng_b = rng.fork(b as u64);
            let batch = sampler.sample_batch_with(&mut scratch, &mut rng_b);
            fired += batch
                .detectors
                .iter()
                .map(|m| m.count_ones() as usize)
                .sum::<usize>();
        }
        fired
    });

    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let scalar_ns = bench("frame_sampler_per_shot_d5", 1, || {
        let mut fired = 0usize;
        for _ in 0..batches * 64 {
            fired += sampler.sample_shot(&mut rng).detectors.weight();
        }
        fired
    });

    let speedup = scalar_ns as f64 / batched_ns.max(1) as f64;
    emit(format!(
        "{{\"component\":\"frame_sampler_speedup_batched_vs_per_shot\",\
         \"shots\":{},\"speedup\":{speedup:.1},\"pass_10x\":{}}}",
        batches * 64,
        speedup >= 10.0,
    ));
}

fn bench_dem() {
    let code = small_hyperbolic_code();
    let fpn = small_fpn(&code);
    let exp = memory_experiment(&code, &fpn, 1e-3);
    bench("dem_hyperbolic_30_fpn", 5, || {
        DetectorErrorModel::from_circuit(&exp.circuit)
            .mechanisms()
            .len()
    });
}

fn bench_decoding() {
    let code = small_hyperbolic_code();
    let fpn = small_fpn(&code);
    let noise = NoiseModel::new(1e-3);
    let exp = memory_experiment(&code, &fpn, 1e-3);
    let pipeline = DecodingPipeline::new(&code, &exp, DecoderKind::FlaggedMwpm, &noise);
    let sampler = FrameSampler::new(&exp.circuit);
    let mut rng = Xoshiro256StarStar::seed_from_u64(11);
    // Pre-sample shots that actually fire detectors.
    let mut shots = Vec::new();
    while shots.len() < 256 {
        let batch = sampler.sample_batch(&mut rng);
        for s in 0..64 {
            let d = batch.detector_bits(s);
            if !d.is_zero() {
                shots.push(d);
            }
        }
    }
    let mut i = 0usize;
    bench("flagged_mwpm_decode_shot", 256, || {
        let shot = &shots[i % shots.len()];
        i += 1;
        pipeline.decoder().decode(shot).weight()
    });
}

/// Runs the `run_ber` worker loop single-threaded against `decoder`,
/// timing each stage separately, and emits one JSON line:
/// `sample_ns` (batch sampling + per-shot bit extraction), `decode_ns`
/// (only shots with a nonzero syndrome reach the decoder) and
/// `compare_ns` (prediction vs. actual observables), all cumulative,
/// plus `decode_ns_per_shot` averaged over the decoded shots and the
/// decoder's give-up count for the run.
fn stage_timings(
    workload: &str,
    name: &str,
    circuit: &Circuit,
    decoder: &dyn Decoder,
    shots: usize,
) {
    let sampler = FrameSampler::new(circuit);
    let batches = shots.div_ceil(64);
    let mut scratch = FrameBatch::new();
    let mut decode_scratch = DecodeScratch::new();
    let mut dets = BitVec::zeros(0);
    let mut actual = BitVec::zeros(0);
    let mut predicted = BitVec::zeros(0);
    let (mut sample_ns, mut decode_ns, mut compare_ns) = (0u128, 0u128, 0u128);
    let mut failures = 0usize;
    let mut decoded = 0usize;
    let stats_before = decoder.stats();
    for b in 0..batches {
        let mut rng = Xoshiro256StarStar::from_seed_stream(17, b as u64);
        let t = Instant::now();
        let batch = sampler.sample_batch_with(&mut scratch, &mut rng);
        sample_ns += t.elapsed().as_nanos();
        for shot in 0..64 {
            let t = Instant::now();
            batch.observable_bits_into(shot, &mut actual);
            batch.detector_bits_into(shot, &mut dets);
            sample_ns += t.elapsed().as_nanos();
            if dets.is_zero() {
                let t = Instant::now();
                if !actual.is_zero() {
                    failures += 1;
                }
                compare_ns += t.elapsed().as_nanos();
                continue;
            }
            let t = Instant::now();
            decoder.decode_into(&dets, &mut decode_scratch, &mut predicted);
            decode_ns += t.elapsed().as_nanos();
            decoded += 1;
            let t = Instant::now();
            if predicted != actual {
                failures += 1;
            }
            compare_ns += t.elapsed().as_nanos();
        }
    }
    let stats_after = decoder.stats();
    let giveups = stats_after.giveups() - stats_before.giveups();
    let oracle_hits = stats_after.oracle_hits - stats_before.oracle_hits;
    let sparse_hits = stats_after.sparse_hits - stats_before.sparse_hits;
    let oracle_misses = stats_after.oracle_misses - stats_before.oracle_misses;
    emit(format!(
        "{{\"component\":\"ber_stages_{workload}\",\"decoder\":\"{name}\",\
         \"shots\":{},\"decoded\":{decoded},\"failures\":{failures},\
         \"sample_ns\":{sample_ns},\"decode_ns\":{decode_ns},\
         \"compare_ns\":{compare_ns},\"decode_ns_per_shot\":{},\
         \"giveups\":{giveups},\"oracle_hits\":{oracle_hits},\
         \"sparse_hits\":{sparse_hits},\"oracle_misses\":{oracle_misses}}}",
        batches * 64,
        decode_ns / decoded.max(1) as u128,
    ));
}

/// Per-stage BER timings of every decoder on its reference workload:
/// the three surface-code decoders on the d=5 planar memory experiment
/// and the restriction decoder on the 2-round toric color-code one.
fn bench_ber_stages(shots: usize) {
    let code = rotated_surface_code(5);
    let fpn = FlagProxyNetwork::build(&code, &FpnConfig::direct());
    let exp = memory_experiment(&code, &fpn, 1e-3);
    let dem = DetectorErrorModel::from_circuit(&exp.circuit);
    let pm = NoiseModel::new(1e-3).measurement_flip();
    let decoders: Vec<(&str, Box<dyn Decoder>)> = vec![
        (
            "plain_mwpm",
            Box::new(MwpmDecoder::new(&dem, MwpmConfig::unflagged())),
        ),
        (
            "flagged_mwpm",
            Box::new(MwpmDecoder::new(&dem, MwpmConfig::flagged(pm))),
        ),
        (
            "unionfind",
            Box::new(UnionFindDecoder::new(&dem, UnionFindConfig::unflagged())),
        ),
    ];
    for (name, decoder) in &decoders {
        stage_timings("d5_surface", name, &exp.circuit, decoder.as_ref(), shots);
    }

    let code = toric_color_code(2).expect("toric color code builds");
    let fpn = FlagProxyNetwork::build(&code, &FpnConfig::direct());
    let noise = NoiseModel::new(5e-4);
    let exp = build_memory_circuit(&code, &fpn, Some(&noise), 2, Basis::Z);
    let pipeline = DecodingPipeline::new(&code, &exp, DecoderKind::FlaggedRestriction, &noise);
    stage_timings(
        "toric_color",
        "flagged_restriction",
        &exp.circuit,
        pipeline.decoder(),
        shots,
    );
}

/// The batched Union-Find hot path against its own per-shot baseline
/// on the d=5 surface-code BER workload: same pre-extracted nonzero
/// syndromes through `decode` (allocating, full-edge scans) and
/// `decode_into` (scratch-reusing, frontier growth). The acceptance
/// target is a ≥ 2× lower decode time per shot, with bit-identical
/// corrections.
fn bench_unionfind_speedup(shots: usize) {
    let code = rotated_surface_code(5);
    let fpn = FlagProxyNetwork::build(&code, &FpnConfig::direct());
    let exp = memory_experiment(&code, &fpn, 1e-3);
    let dem = DetectorErrorModel::from_circuit(&exp.circuit);
    let decoder = UnionFindDecoder::new(&dem, UnionFindConfig::unflagged());
    let sampler = FrameSampler::new(&exp.circuit);
    let mut scratch = FrameBatch::new();
    let mut syndromes = Vec::new();
    let mut b = 0u64;
    while syndromes.len() < shots && b < 4 * shots.div_ceil(64) as u64 + 64 {
        let mut rng = Xoshiro256StarStar::from_seed_stream(123, b);
        b += 1;
        let batch = sampler.sample_batch_with(&mut scratch, &mut rng);
        for s in 0..64 {
            let d = batch.detector_bits(s);
            if !d.is_zero() {
                syndromes.push(d);
                if syndromes.len() == shots {
                    break;
                }
            }
        }
    }
    // Correctness first (untimed): both paths must agree bit-for-bit.
    let mut ds = DecodeScratch::new();
    let mut out = BitVec::zeros(0);
    let mut identical = true;
    for d in &syndromes {
        decoder.decode_into(d, &mut ds, &mut out);
        if out != decoder.decode(d) {
            identical = false;
        }
    }
    let mut checksum = 0usize;
    let t = Instant::now();
    for d in &syndromes {
        checksum = checksum.wrapping_add(decoder.decode(d).weight());
    }
    let per_shot_ns = t.elapsed().as_nanos();
    let mut batched_checksum = 0usize;
    let t = Instant::now();
    for d in &syndromes {
        decoder.decode_into(d, &mut ds, &mut out);
        batched_checksum = batched_checksum.wrapping_add(out.weight());
    }
    let batched_ns = t.elapsed().as_nanos();
    let n = syndromes.len().max(1) as u128;
    let speedup = per_shot_ns as f64 / batched_ns.max(1) as f64;
    emit(format!(
        "{{\"component\":\"unionfind_decode_into_speedup_d5\",\"shots\":{},\
         \"per_shot_decode_ns\":{},\"batched_decode_ns\":{},\
         \"speedup\":{speedup:.1},\"pass_2x\":{},\"identical\":{},\
         \"checksum\":{checksum}}}",
        syndromes.len(),
        per_shot_ns / n,
        batched_ns / n,
        speedup >= 2.0,
        identical && checksum == batched_checksum,
    ));
}

/// The oracle-backed MWPM `decode_into` hot path against the PR-2
/// per-shot-Dijkstra fallback (`oracle_node_limit = 0`) on the d=5
/// surface BER workload: identical pre-extracted nonzero syndromes
/// through both decoders. Acceptance target is a ≥ 3× lower decode
/// time per shot with bit-identical corrections; oracle construction
/// cost is reported separately (it is paid once per DEM, amortized
/// over every shot of every `run_ber` worker).
fn bench_mwpm_oracle_speedup(shots: usize) {
    let code = rotated_surface_code(5);
    let fpn = FlagProxyNetwork::build(&code, &FpnConfig::direct());
    let exp = memory_experiment(&code, &fpn, 1e-3);
    let dem = DetectorErrorModel::from_circuit(&exp.circuit);

    let t = Instant::now();
    let oracle_decoder = MwpmDecoder::new(&dem, MwpmConfig::unflagged());
    let construct_oracle_ns = t.elapsed().as_nanos();
    let t = Instant::now();
    let fallback_decoder = MwpmDecoder::new(
        &dem,
        MwpmConfig::unflagged()
            .with_oracle_node_limit(0)
            .with_sparse_paths(false),
    );
    let construct_fallback_ns = t.elapsed().as_nanos();
    let oracle = oracle_decoder
        .path_oracle()
        .expect("d=5 surface graph fits the default oracle node limit");
    emit(format!(
        "{{\"component\":\"mwpm_oracle_construction_d5\",\
         \"construct_with_oracle_ns\":{construct_oracle_ns},\
         \"construct_fallback_ns\":{construct_fallback_ns},\
         \"oracle_nodes\":{},\"oracle_bytes\":{}}}",
        oracle.num_nodes(),
        oracle.memory_bytes(),
    ));

    let sampler = FrameSampler::new(&exp.circuit);
    let mut scratch = FrameBatch::new();
    let mut syndromes = Vec::new();
    let mut b = 0u64;
    while syndromes.len() < shots && b < 4 * shots.div_ceil(64) as u64 + 64 {
        let mut rng = Xoshiro256StarStar::from_seed_stream(321, b);
        b += 1;
        let batch = sampler.sample_batch_with(&mut scratch, &mut rng);
        for s in 0..64 {
            let d = batch.detector_bits(s);
            if !d.is_zero() {
                syndromes.push(d);
                if syndromes.len() == shots {
                    break;
                }
            }
        }
    }
    // Correctness first (untimed): both paths must agree bit-for-bit.
    let mut ds = DecodeScratch::new();
    let mut out = BitVec::zeros(0);
    let mut reference = BitVec::zeros(0);
    let mut identical = true;
    for d in &syndromes {
        oracle_decoder.decode_into(d, &mut ds, &mut out);
        fallback_decoder.decode_into(d, &mut ds, &mut reference);
        if out != reference {
            identical = false;
        }
    }
    let mut fallback_checksum = 0usize;
    let t = Instant::now();
    for d in &syndromes {
        fallback_decoder.decode_into(d, &mut ds, &mut out);
        fallback_checksum = fallback_checksum.wrapping_add(out.weight());
    }
    let fallback_ns = t.elapsed().as_nanos();
    let mut oracle_checksum = 0usize;
    let t = Instant::now();
    for d in &syndromes {
        oracle_decoder.decode_into(d, &mut ds, &mut out);
        oracle_checksum = oracle_checksum.wrapping_add(out.weight());
    }
    let oracle_ns = t.elapsed().as_nanos();
    let stats = oracle_decoder.stats();
    let n = syndromes.len().max(1) as u128;
    let speedup = fallback_ns as f64 / oracle_ns.max(1) as f64;
    emit(format!(
        "{{\"component\":\"mwpm_oracle_speedup_d5\",\"shots\":{},\
         \"per_shot_dijkstra_decode_ns\":{},\"oracle_decode_ns\":{},\
         \"speedup\":{speedup:.1},\"pass_oracle\":{},\"identical\":{},\
         \"oracle_hits\":{},\"oracle_misses\":{},\"checksum\":{oracle_checksum}}}",
        syndromes.len(),
        fallback_ns / n,
        oracle_ns / n,
        speedup >= 3.0,
        identical && oracle_checksum == fallback_checksum,
        stats.oracle_hits,
        stats.oracle_misses,
    ));
}

/// The lazy sparse-path middle tier against the per-shot Dijkstra
/// fallback on the hyperbolic fixture — 1224 check detectors, above
/// the default dense-oracle node guard, so the dense tier is
/// unavailable and the sparse tier is what stands between every shot
/// and a full |V| Dijkstra per defect. The workload runs at
/// p = 1e-4 (a standard physical rate for this code family), where
/// shots carry a handful of defects and the defect-seeded truncated
/// searches explore a small fraction of the graph. Acceptance target
/// is a ≥ 2× lower decode time per shot with bit-identical
/// corrections; the construction record reports the CSR index's
/// memory against the dense oracle's would-be O(V²) matrix, and the
/// speedup record the peak per-shot memo footprint (O(defects · k)).
fn bench_mwpm_sparse_speedup(shots: usize) {
    let (_, exp, _) = qec_testkit::hyperbolic_memory_experiment_at(1e-4);
    let dem = DetectorErrorModel::from_circuit(&exp.circuit);

    let t = Instant::now();
    let sparse_decoder = MwpmDecoder::new(&dem, MwpmConfig::unflagged());
    let construct_sparse_ns = t.elapsed().as_nanos();
    assert!(
        sparse_decoder.path_oracle().is_none(),
        "hyperbolic graph must exceed the dense-oracle node guard"
    );
    let finder = sparse_decoder
        .sparse_finder()
        .expect("sparse tier engages when the oracle is guarded off");
    let t = Instant::now();
    let fallback_decoder = MwpmDecoder::new(&dem, MwpmConfig::unflagged().with_sparse_paths(false));
    let construct_fallback_ns = t.elapsed().as_nanos();
    let nodes = finder.num_nodes();
    emit(format!(
        "{{\"component\":\"mwpm_sparse_construction_hyperbolic\",\
         \"construct_sparse_ns\":{construct_sparse_ns},\
         \"construct_fallback_ns\":{construct_fallback_ns},\
         \"sparse_nodes\":{nodes},\"sparse_index_bytes\":{},\
         \"dense_oracle_would_be_bytes\":{}}}",
        finder.memory_bytes(),
        nodes * nodes * 16,
    ));

    let sampler = FrameSampler::new(&exp.circuit);
    let mut scratch = FrameBatch::new();
    let mut syndromes = Vec::new();
    let mut b = 0u64;
    while syndromes.len() < shots && b < 4 * shots.div_ceil(64) as u64 + 64 {
        let mut rng = Xoshiro256StarStar::from_seed_stream(321, b);
        b += 1;
        let batch = sampler.sample_batch_with(&mut scratch, &mut rng);
        for s in 0..64 {
            let d = batch.detector_bits(s);
            if !d.is_zero() {
                syndromes.push(d);
                if syndromes.len() == shots {
                    break;
                }
            }
        }
    }
    // Correctness first (untimed): both tiers must agree bit-for-bit;
    // track the peak per-shot memo footprint along the way.
    let mut ds = DecodeScratch::new();
    let mut out = BitVec::zeros(0);
    let mut reference = BitVec::zeros(0);
    let mut identical = true;
    let mut peak_memo_bytes = 0usize;
    for d in &syndromes {
        sparse_decoder.decode_into(d, &mut ds, &mut out);
        peak_memo_bytes = peak_memo_bytes.max(ds.sparse_memo_bytes());
        fallback_decoder.decode_into(d, &mut ds, &mut reference);
        if out != reference {
            identical = false;
        }
    }
    let mut fallback_checksum = 0usize;
    let t = Instant::now();
    for d in &syndromes {
        fallback_decoder.decode_into(d, &mut ds, &mut out);
        fallback_checksum = fallback_checksum.wrapping_add(out.weight());
    }
    let fallback_ns = t.elapsed().as_nanos();
    let mut sparse_checksum = 0usize;
    let t = Instant::now();
    for d in &syndromes {
        sparse_decoder.decode_into(d, &mut ds, &mut out);
        sparse_checksum = sparse_checksum.wrapping_add(out.weight());
    }
    let sparse_ns = t.elapsed().as_nanos();
    let stats = sparse_decoder.stats();
    let n = syndromes.len().max(1) as u128;
    let speedup = fallback_ns as f64 / sparse_ns.max(1) as f64;
    emit(format!(
        "{{\"component\":\"mwpm_sparse_speedup_hyperbolic\",\"shots\":{},\
         \"per_shot_dijkstra_decode_ns\":{},\"sparse_decode_ns\":{},\
         \"speedup\":{speedup:.1},\"pass_sparse\":{},\"identical\":{},\
         \"sparse_hits\":{},\"oracle_misses\":{},\
         \"peak_sparse_memo_bytes\":{peak_memo_bytes},\
         \"checksum\":{sparse_checksum}}}",
        syndromes.len(),
        fallback_ns / n,
        sparse_ns / n,
        speedup >= 2.0,
        identical && sparse_checksum == fallback_checksum,
        stats.sparse_hits,
        stats.oracle_misses,
    ));
}

fn bench_scheduling() {
    let code = small_hyperbolic_code();
    bench("greedy_schedule_30_8", 10, || {
        greedy_schedule(&code).makespan()
    });
}

fn bench_construction() {
    let pres = von_dyck(3, 5, &[]);
    bench("todd_coxeter_a5", 10, || {
        enumerate_cosets(&pres, &[], 1000).unwrap().num_cosets()
    });
    let code = small_hyperbolic_code();
    bench("fpn_build_30_8", 10, || {
        FlagProxyNetwork::build(&code, &FpnConfig::shared()).num_qubits()
    });
}

/// Parses `--shots N` (default 10 000; CI runs `--shots 1000` for a
/// quick pass).
fn parse_shots() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--shots" {
            let v = args.next().expect("--shots needs a value");
            return v.parse().expect("--shots takes an integer");
        }
    }
    10_000
}

fn main() {
    let shots = parse_shots();
    bench_blossom();
    bench_sampling(shots);
    bench_dem();
    bench_decoding();
    bench_ber_stages(shots);
    bench_unionfind_speedup(shots);
    bench_mwpm_oracle_speedup(shots);
    bench_mwpm_sparse_speedup(shots);
    bench_scheduling();
    bench_construction();
    write_bench_json(shots);
}
