//! CI smoke for the qec-serve telemetry plane: starts a real
//! [`DecodeService`] with the HTTP endpoint on loopback, pushes a
//! decode workload through it, scrapes `/metrics`, `/healthz` and
//! `/snapshot` over actual TCP (no `curl` dependency), and validates
//! what comes back. Exits non-zero on any malformed exposition,
//! unparseable health JSON, missing report key, or an unhealthy
//! verdict — the zero-dep equivalent of
//! `curl -f localhost:PORT/healthz` in a deploy pipeline.

use fpn_core::prelude::*;
use qec_bench::memory_experiment;
use qec_math::BitVec;
use qec_obs::{JsonValue, Registry};
use qec_serve::{DecodeService, ServeConfig};
use qec_sim::FrameBatch;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: qec\r\n\r\n").as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{path}: malformed status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn run() -> Result<(), String> {
    // A small real decoding workload: d=3 surface code, flagged MWPM.
    let code = rotated_surface_code(3);
    let fpn = FlagProxyNetwork::build(&code, &FpnConfig::direct());
    let exp = memory_experiment(&code, &fpn, 2e-3);
    let dem = DetectorErrorModel::from_circuit(&exp.circuit);
    let decoder: Arc<dyn Decoder + Send + Sync> =
        Arc::new(MwpmDecoder::new(&dem, MwpmConfig::unflagged()));

    let service = DecodeService::new(
        Arc::clone(&decoder),
        ServeConfig::new()
            .with_shards(2)
            .with_queue_capacity(32)
            .with_metrics(Registry::new())
            .with_telemetry_addr("127.0.0.1:0"),
    );
    let addr = service
        .telemetry_addr()
        .ok_or("telemetry listener did not bind")?;

    // Load: every nonzero syndrome from a few sampled batches.
    let sampler = FrameSampler::new(&exp.circuit);
    let mut scratch = FrameBatch::new();
    let mut dets = BitVec::zeros(0);
    let mut shots = Vec::new();
    for b in 0..8u64 {
        let mut rng = qec_math::rng::Xoshiro256StarStar::from_seed_stream(55, b);
        let batch = sampler.sample_batch_with(&mut scratch, &mut rng);
        for s in 0..64 {
            batch.detector_bits_into(s, &mut dets);
            if !dets.is_zero() {
                shots.push(dets.clone());
            }
        }
    }
    if shots.is_empty() {
        return Err("workload sampled no nonzero syndromes".to_string());
    }
    let pending: Vec<_> = shots
        .chunks(8)
        .map(|c| {
            service
                .try_submit(c.to_vec())
                .map_err(|e| format!("submit: {e}"))
        })
        .collect::<Result<_, _>>()?;
    for p in pending {
        p.wait().map_err(|e| format!("decode: {e}"))?;
    }

    // /metrics: status 200, parseable exposition with the serve series.
    let (status, metrics) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(format!("/metrics answered {status}"));
    }
    for needle in [
        "# TYPE serve_requests counter",
        "# TYPE serve_e2e_ns histogram",
        "serve_e2e_ns_bucket{le=\"+Inf\"}",
        "serve_completed_per_sec{window=\"10s\"}",
    ] {
        if !metrics.contains(needle) {
            return Err(format!("/metrics missing {needle:?}"));
        }
    }
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        let value = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("/metrics malformed line {line:?}"))?
            .1;
        value
            .parse::<f64>()
            .map_err(|_| format!("/metrics non-numeric sample {line:?}"))?;
    }

    // /healthz: 200, valid JSON, ok verdict, report keys present.
    let (status, health) = http_get(addr, "/healthz")?;
    if status != 200 {
        return Err(format!("/healthz answered {status}: {health}"));
    }
    let health = JsonValue::parse(&health).map_err(|e| format!("/healthz not JSON: {e}"))?;
    if health.get("status").and_then(JsonValue::as_str) != Some("ok") {
        return Err(format!("/healthz not ok: {health}"));
    }
    for key in ["shards", "queue_depth", "deadline_miss_per_sec_10s"] {
        if health.get(key).is_none() {
            return Err(format!("/healthz missing {key:?}: {health}"));
        }
    }

    // /snapshot: 200, valid JSON carrying the serve series.
    let (status, snapshot) = http_get(addr, "/snapshot")?;
    if status != 200 {
        return Err(format!("/snapshot answered {status}"));
    }
    let snapshot = JsonValue::parse(&snapshot).map_err(|e| format!("/snapshot not JSON: {e}"))?;
    let completed = snapshot
        .get("serve.completed")
        .and_then(|v| v.get("value"))
        .and_then(JsonValue::as_u64)
        .or_else(|| snapshot.get("serve.completed").and_then(JsonValue::as_u64));
    if completed.unwrap_or(0) == 0 {
        return Err(format!("/snapshot shows no completed requests: {snapshot}"));
    }

    println!(
        "telemetry smoke ok: {} requests decoded, /metrics {} bytes, healthz ok ({addr})",
        shots.chunks(8).len(),
        metrics.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("telemetry_smoke: {err}");
            ExitCode::FAILURE
        }
    }
}
