//! Offline analyzer for qec-obs traces and qec-bench artifacts.
//!
//! Two modes, both read-only:
//!
//! ```text
//! obs_report --trace <trace.jsonl> [--collapse]
//! obs_report --bench <BENCH_A.json> [<BENCH_B.json> ...]
//! ```
//!
//! `--trace` rolls a JSON-lines trace up per span name (count, total
//! time, *self* time with direct children subtracted, mean) and prints
//! the critical path — the chain from the longest root span down
//! through each longest child. With `--collapse` it instead emits
//! flamegraph collapsed-stack lines (`root;child;leaf self_ns`), one
//! per unique stack, ready for `flamegraph.pl` or any compatible
//! renderer.
//!
//! `--bench` reads one or more `BENCH_<pr>.json` artifacts and prints
//! the per-component `per_iter_ns` / `speedup` trajectory across PRs,
//! flagging any component that has regressed more than 20% since its
//! best recorded value. Flags are informational: historical regressions
//! must not fail CI smoke runs, so the exit code only reflects
//! unreadable or malformed inputs.

use qec_obs::JsonValue;
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: obs_report --trace <trace.jsonl> [--collapse]\n       obs_report --bench <BENCH.json>...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--trace") => {
            let Some(path) = args.get(1) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let collapse = args.iter().any(|a| a == "--collapse");
            report_trace(path, collapse)
        }
        Some("--bench") if args.len() > 1 => report_bench(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// --trace
// ---------------------------------------------------------------------------

struct Span {
    id: u64,
    name: String,
    parent: Option<u64>,
    dur_ns: u64,
}

fn report_trace(path: &str, collapse: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("obs_report: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut spans: Vec<Span> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = match JsonValue::parse(line) {
            Ok(event) => event,
            Err(err) => {
                eprintln!("obs_report: {path}:{}: {err}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        if event.get("type").and_then(JsonValue::as_str) != Some("span_close") {
            continue;
        }
        let (Some(id), Some(name), Some(dur_ns)) = (
            event.get("id").and_then(JsonValue::as_u64),
            event.get("name").and_then(JsonValue::as_str),
            event.get("dur_ns").and_then(JsonValue::as_u64),
        ) else {
            eprintln!(
                "obs_report: {path}:{}: span_close missing id/name/dur_ns",
                lineno + 1
            );
            return ExitCode::FAILURE;
        };
        spans.push(Span {
            id,
            name: name.to_string(),
            parent: event.get("parent").and_then(JsonValue::as_u64),
            dur_ns,
        });
    }
    if spans.is_empty() {
        eprintln!("obs_report: {path}: no span_close events");
        return ExitCode::FAILURE;
    }

    // Direct-children total per span id, for self-time attribution.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for span in &spans {
        if let Some(parent) = span.parent {
            *child_ns.entry(parent).or_default() += span.dur_ns;
        }
    }
    let self_ns = |span: &Span| {
        span.dur_ns
            .saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0))
    };

    if collapse {
        print_collapsed(&spans, self_ns);
        return ExitCode::SUCCESS;
    }

    // Per-name rollup.
    struct Rollup {
        count: u64,
        total_ns: u64,
        self_ns: u64,
    }
    let mut rollup: BTreeMap<&str, Rollup> = BTreeMap::new();
    for span in &spans {
        let entry = rollup.entry(&span.name).or_insert(Rollup {
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        entry.count += 1;
        entry.total_ns += span.dur_ns;
        entry.self_ns += self_ns(span);
    }
    let mut rows: Vec<(&str, Rollup)> = rollup.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    let name_width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
    println!(
        "{} spans, {} distinct names ({path})",
        spans.len(),
        rows.len()
    );
    println!(
        "{:<name_width$}  {:>8}  {:>14}  {:>14}  {:>12}",
        "name", "count", "total_ns", "self_ns", "mean_ns"
    );
    for (name, r) in &rows {
        println!(
            "{:<name_width$}  {:>8}  {:>14}  {:>14}  {:>12}",
            name,
            r.count,
            r.total_ns,
            r.self_ns,
            r.total_ns / r.count
        );
    }

    // Critical path: from the longest root, follow the longest child.
    let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for span in &spans {
        if let Some(parent) = span.parent.filter(|p| known.contains(p)) {
            children.entry(parent).or_default().push(span);
        }
    }
    let root = spans
        .iter()
        .filter(|s| s.parent.is_none_or(|p| !known.contains(&p)))
        .max_by_key(|s| s.dur_ns)
        .expect("non-empty span set has a root");
    println!("\ncritical path:");
    let mut node = root;
    loop {
        let pct = 100.0 * node.dur_ns as f64 / root.dur_ns.max(1) as f64;
        println!("  {} {} ns ({pct:.1}% of root)", node.name, node.dur_ns);
        match children
            .get(&node.id)
            .and_then(|c| c.iter().max_by_key(|s| s.dur_ns))
        {
            Some(next) => node = next,
            None => break,
        }
    }
    ExitCode::SUCCESS
}

/// Flamegraph collapsed-stack output: `a;b;c self_ns`, aggregated over
/// identical stacks. Spans whose parent never closed root their own
/// stack.
fn print_collapsed(spans: &[Span], self_ns: impl Fn(&Span) -> u64) {
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in spans {
        let mut frames = vec![span.name.as_str()];
        let mut cursor = span.parent;
        while let Some(parent) = cursor.and_then(|p| by_id.get(&p)) {
            frames.push(parent.name.as_str());
            cursor = parent.parent;
        }
        frames.reverse();
        *stacks.entry(frames.join(";")).or_default() += self_ns(span);
    }
    for (stack, ns) in &stacks {
        println!("{stack} {ns}");
    }
}

// ---------------------------------------------------------------------------
// --bench
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Trajectory {
    /// `(pr, per_iter_ns)` in PR order.
    per_iter: Vec<(u64, u64)>,
    /// `(pr, speedup)` in PR order.
    speedup: Vec<(u64, f64)>,
}

fn report_bench(paths: &[String]) -> ExitCode {
    let mut components: BTreeMap<String, Trajectory> = BTreeMap::new();
    let mut artifacts: Vec<(u64, String)> = Vec::new();
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("obs_report: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match JsonValue::parse(&text) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("obs_report: {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let (Some(pr), Some(records)) = (
            doc.get("pr").and_then(JsonValue::as_u64),
            doc.get("records").and_then(JsonValue::as_array),
        ) else {
            eprintln!("obs_report: {path}: not a BENCH artifact (need pr + records)");
            return ExitCode::FAILURE;
        };
        artifacts.push((pr, path.clone()));
        for record in records {
            let Some(component) = record.get("component").and_then(JsonValue::as_str) else {
                continue;
            };
            let entry = components.entry(component.to_string()).or_default();
            if let Some(ns) = record.get("per_iter_ns").and_then(JsonValue::as_u64) {
                entry.per_iter.push((pr, ns));
            }
            if let Some(speedup) = record.get("speedup").and_then(JsonValue::as_f64) {
                entry.speedup.push((pr, speedup));
            }
        }
    }
    artifacts.sort();
    println!(
        "{} artifacts (PR {}..{}), {} components",
        artifacts.len(),
        artifacts.first().map_or(0, |(pr, _)| *pr),
        artifacts.last().map_or(0, |(pr, _)| *pr),
        components.len()
    );

    let mut regressed = 0usize;
    for (component, mut traj) in components {
        traj.per_iter.sort();
        traj.speedup.sort_by_key(|&(pr, _)| pr);
        let mut flags: Vec<String> = Vec::new();
        if let (Some(&(latest_pr, latest)), Some(&(best_pr, best))) = (
            traj.per_iter.last(),
            traj.per_iter.iter().min_by_key(|(_, ns)| *ns),
        ) {
            let path = traj
                .per_iter
                .iter()
                .map(|(pr, ns)| format!("pr{pr} {ns}ns"))
                .collect::<Vec<_>>()
                .join(" -> ");
            println!("{component}: {path}");
            // Lower is better; >20% above the best recorded PR flags.
            if latest as f64 > best as f64 * 1.2 {
                flags.push(format!(
                    "per_iter_ns regressed {:.0}% at pr{latest_pr} vs best {best}ns (pr{best_pr})",
                    100.0 * (latest as f64 / best as f64 - 1.0)
                ));
            }
        }
        if let (Some(&(latest_pr, latest)), Some(&(best_pr, best))) = (
            traj.speedup.last(),
            traj.speedup.iter().max_by(|a, b| a.1.total_cmp(&b.1)),
        ) {
            let path = traj
                .speedup
                .iter()
                .map(|(pr, s)| format!("pr{pr} {s:.1}x"))
                .collect::<Vec<_>>()
                .join(" -> ");
            println!("{component}: {path}");
            // Higher is better; >20% below the best recorded PR flags.
            if latest < best / 1.2 {
                flags.push(format!(
                    "speedup regressed to {latest:.1}x at pr{latest_pr} vs best {best:.1}x (pr{best_pr})"
                ));
            }
        }
        for flag in &flags {
            regressed += 1;
            println!("  !! {flag}");
        }
    }
    println!("{regressed} regression flag(s) (informational; >20% since best)");
    ExitCode::SUCCESS
}
