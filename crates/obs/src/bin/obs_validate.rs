//! Validates a qec-obs JSON-lines trace file.
//!
//! Usage: `obs_validate <trace.jsonl> [--min-events N]`
//!
//! Exits non-zero (with a diagnostic on stderr) if the file is empty, any
//! line fails to parse as a JSON object with a `type`, span enter/close
//! events are unbalanced, or — with `--min-events N` — the trace holds
//! fewer than `N` events (a trace that parses but is suspiciously short
//! usually means instrumentation silently fell off a hot path). Used by
//! `ci.sh` on the trace emitted by the bench smoke run.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut min_events: usize = 0;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--min-events" {
            min_events = match iter.next().map(|n| n.parse()) {
                Some(Ok(n)) => n,
                _ => {
                    eprintln!("obs_validate: --min-events needs a number");
                    return ExitCode::FAILURE;
                }
            };
        } else if path.is_none() {
            path = Some(arg);
        } else {
            eprintln!("usage: obs_validate <trace.jsonl> [--min-events N]");
            return ExitCode::FAILURE;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: obs_validate <trace.jsonl> [--min-events N]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("obs_validate: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match qec_obs::validate_trace(&text) {
        Ok(summary) => {
            println!(
                "trace ok: {} events, {} spans, {} metrics snapshots ({path})",
                summary.events, summary.spans, summary.metrics_snapshots
            );
            if summary.events < min_events {
                eprintln!(
                    "obs_validate: {path}: {} events < required --min-events {min_events}",
                    summary.events
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("obs_validate: {path}: {err}");
            ExitCode::FAILURE
        }
    }
}
