//! Validates a qec-obs JSON-lines trace file.
//!
//! Usage: `obs_validate <trace.jsonl>`
//!
//! Exits non-zero (with a diagnostic on stderr) if the file is empty, any
//! line fails to parse as a JSON object with a `type`, or span enter/close
//! events are unbalanced. Used by `ci.sh` on the trace emitted by the bench
//! smoke run.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: obs_validate <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("obs_validate: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match qec_obs::validate_trace(&text) {
        Ok(summary) => {
            println!(
                "trace ok: {} events, {} spans, {} metrics snapshots ({path})",
                summary.events, summary.spans, summary.metrics_snapshots
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("obs_validate: {path}: {err}");
            ExitCode::FAILURE
        }
    }
}
