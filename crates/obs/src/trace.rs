//! The JSON-lines trace sink and the process-global tracer.
//!
//! Tracing is **off by default** and costs one relaxed atomic load per
//! instrumentation site when off. It is enabled either programmatically
//! ([`init_to_path`], used by `--trace <path>` flags and tests) or from the
//! environment ([`init_from_env`], `QEC_OBS=1`). Every event is one JSON
//! object per line; see DESIGN.md §"Observability" for the schema.
//!
//! Instrumentation must never feed back into decode logic, so every emit path
//! here swallows I/O errors instead of propagating them.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::{JsonValue, Record};
use crate::metrics::{Registry, RegistrySnapshot};

/// Default trace path used by [`init_from_env`] when `QEC_OBS_PATH` is unset.
pub const DEFAULT_TRACE_PATH: &str = "qec_obs_trace.jsonl";

#[derive(Debug)]
struct TraceInner {
    path: PathBuf,
    sink: Mutex<BufWriter<File>>,
    epoch: Instant,
    seq: AtomicU64,
}

/// A handle to one JSON-lines trace file.
///
/// Cloning shares the file. Writes are buffered and serialised under a mutex,
/// so each event occupies exactly one line even with concurrent writers; call
/// [`flush`](Self::flush) (or drop the last handle) before reading the file.
#[derive(Debug, Clone)]
pub struct TraceWriter {
    inner: Arc<TraceInner>,
}

impl TraceWriter {
    /// Creates (truncates) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<TraceWriter> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(TraceWriter {
            inner: Arc::new(TraceInner {
                path,
                sink: Mutex::new(BufWriter::new(file)),
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
            }),
        })
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Nanoseconds since this writer was created (monotonic).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Starts an event line with the common prefix
    /// `{"type":<event_type>,"seq":..,"t_ns":..` (no closing brace).
    fn begin_line(&self, event_type: &str) -> String {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(192);
        line.push_str("{\"type\":");
        crate::json::write_escaped(event_type, &mut line);
        line.push_str(",\"seq\":");
        JsonValue::U64(seq).write(&mut line);
        line.push_str(",\"t_ns\":");
        JsonValue::U64(self.elapsed_ns()).write(&mut line);
        line
    }

    /// Terminates and writes one event line.
    fn end_line(&self, mut line: String) {
        line.push_str("}\n");
        let mut sink = self.inner.sink.lock().expect("trace sink lock");
        // Observability must not take the pipeline down: drop on I/O error.
        let _ = sink.write_all(line.as_bytes());
    }

    /// Writes one event line: `{"type":<event_type>,"seq":..,"t_ns":..,<body>}`.
    pub fn emit(&self, event_type: &str, body: Record) {
        let mut line = self.begin_line(event_type);
        for (k, v) in body.fields() {
            line.push(',');
            crate::json::write_escaped(k, &mut line);
            line.push(':');
            v.write(&mut line);
        }
        self.end_line(line);
    }

    /// Writes one span event line without intermediate allocations — the
    /// per-batch hot path, kept cheap so the `pass_obs_overhead` gate holds
    /// on sub-microsecond decoders.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_span(
        &self,
        event_type: &str,
        name: &str,
        id: u64,
        parent: Option<u64>,
        thread: u64,
        depth: usize,
        dur_ns: Option<u64>,
        fields: &[(String, JsonValue)],
    ) {
        let mut line = self.begin_line(event_type);
        line.push_str(",\"name\":");
        crate::json::write_escaped(name, &mut line);
        line.push_str(",\"id\":");
        JsonValue::U64(id).write(&mut line);
        line.push_str(",\"parent\":");
        match parent {
            Some(p) => JsonValue::U64(p).write(&mut line),
            None => line.push_str("null"),
        }
        line.push_str(",\"thread\":");
        JsonValue::U64(thread).write(&mut line);
        line.push_str(",\"depth\":");
        JsonValue::U64(depth as u64).write(&mut line);
        if let Some(dur) = dur_ns {
            line.push_str(",\"dur_ns\":");
            JsonValue::U64(dur).write(&mut line);
        }
        if !fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                crate::json::write_escaped(k, &mut line);
                line.push(':');
                v.write(&mut line);
            }
            line.push('}');
        }
        self.end_line(line);
    }

    /// Emits a `metrics` event carrying a registry snapshot.
    pub fn emit_registry(&self, registry_name: &str, snapshot: &RegistrySnapshot) {
        self.emit(
            "metrics",
            Record::new()
                .field("registry", registry_name)
                .field("metrics", snapshot.to_json()),
        );
    }

    /// Flushes buffered events to disk.
    pub fn flush(&self) {
        let mut sink = self.inner.sink.lock().expect("trace sink lock");
        let _ = sink.flush();
    }
}

impl Drop for TraceInner {
    fn drop(&mut self) {
        if let Ok(sink) = self.sink.get_mut() {
            let _ = sink.flush();
        }
    }
}

static GLOBAL: OnceLock<TraceWriter> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL_REGISTRY: OnceLock<Registry> = OnceLock::new();

/// Whether global tracing is enabled. One relaxed load; instrumentation sites
/// check this before doing any work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global tracer, when tracing is enabled.
pub fn tracer() -> Option<&'static TraceWriter> {
    if enabled() {
        GLOBAL.get()
    } else {
        None
    }
}

/// The process-global metrics registry (lazily created). Components without a
/// pipeline-scoped registry (e.g. `qec-bench`) record here; [`finish`] emits
/// its snapshot.
pub fn global_registry() -> &'static Registry {
    GLOBAL_REGISTRY.get_or_init(Registry::new)
}

/// Enables global tracing to `path`. Returns `Ok(true)` if this call
/// initialised tracing, `Ok(false)` if it was already initialised (the
/// original sink stays in effect).
pub fn init_to_path(path: impl AsRef<Path>) -> std::io::Result<bool> {
    if GLOBAL.get().is_some() {
        return Ok(false);
    }
    let writer = TraceWriter::create(path)?;
    let fresh = GLOBAL.set(writer).is_ok();
    ENABLED.store(true, Ordering::Relaxed);
    Ok(fresh)
}

/// Enables tracing when `QEC_OBS` is set to anything but `""`/`"0"`, writing
/// to `QEC_OBS_PATH` (default [`DEFAULT_TRACE_PATH`]). Returns whether global
/// tracing is enabled after the call.
pub fn init_from_env() -> bool {
    let on = std::env::var("QEC_OBS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if on {
        let path = std::env::var("QEC_OBS_PATH").unwrap_or_else(|_| DEFAULT_TRACE_PATH.to_string());
        if let Err(err) = init_to_path(&path) {
            eprintln!("qec-obs: cannot open trace file {path:?}: {err}");
        }
    }
    enabled()
}

/// Emits a wrapped record (`{"type":<kind>,..,"record":{..}}`) to the global
/// trace. No-op when tracing is off.
pub fn emit_record(kind: &str, record: &Record) {
    if let Some(t) = tracer() {
        t.emit(
            kind,
            Record::new().field("record", record.clone().into_value()),
        );
    }
}

/// Emits a named registry snapshot to the global trace. No-op when off.
pub fn emit_registry(registry_name: &str, snapshot: &RegistrySnapshot) {
    if let Some(t) = tracer() {
        t.emit_registry(registry_name, snapshot);
    }
}

/// Emits the final global-registry snapshot and flushes the trace file.
/// Call once at the end of a traced program. No-op when tracing is off.
pub fn finish() {
    if let Some(t) = tracer() {
        t.emit_registry("global", &global_registry().snapshot());
        t.flush();
    }
}
