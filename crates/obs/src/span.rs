//! Hierarchical spans with monotonic timing and thread-local nesting.
//!
//! A span emits a `span_enter` event when created and a `span_close` event
//! (with `dur_ns` and any attached fields) when dropped. Nesting is tracked
//! per thread via a thread-local stack of span ids, so a trace can be
//! reassembled into per-thread call trees; the validator checks that every
//! trace has balanced enter/close pairs.
//!
//! When tracing is disabled (the default) [`span`] returns an inert guard:
//! the cost is one relaxed atomic load and no allocation, cheap enough to
//! leave in per-batch hot paths unconditionally.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json::JsonValue;
use crate::trace::{tracer, TraceWriter};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_LABEL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // Stable small integer per OS thread (std's ThreadId has no stable
    // numeric accessor), assigned on first traced span.
    static THREAD_LABEL: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_label() -> u64 {
    THREAD_LABEL.with(|label| {
        let mut v = label.get();
        if v == 0 {
            v = NEXT_THREAD_LABEL.fetch_add(1, Ordering::Relaxed);
            label.set(v);
        }
        v
    })
}

struct LiveSpan {
    writer: TraceWriter,
    name: String,
    id: u64,
    parent: Option<u64>,
    depth: usize,
    thread: u64,
    start: Instant,
    fields: Vec<(String, JsonValue)>,
}

/// RAII guard for one span: created by [`span`]/[`span_with`]/[`span_on`],
/// emits the `span_close` event on drop. Inert (zero-cost drop) when tracing
/// was disabled at creation time.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Attaches a field to be included in the `span_close` event. No-op on an
    /// inert guard.
    pub fn field(&mut self, key: &str, value: impl Into<JsonValue>) {
        if let Some(live) = &mut self.live {
            live.fields.push((key.to_string(), value.into()));
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(
                stack.last().copied(),
                Some(live.id),
                "span drop out of order"
            );
            stack.pop();
        });
        let dur = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        live.writer.emit_span(
            "span_close",
            &live.name,
            live.id,
            live.parent,
            live.thread,
            live.depth,
            Some(dur),
            &live.fields,
        );
    }
}

fn open_span(writer: &TraceWriter, name: &str, fields: &[(&str, JsonValue)]) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let thread = thread_label();
    let (parent, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        let depth = stack.len();
        stack.push(id);
        (parent, depth)
    });
    writer.emit_span("span_enter", name, id, parent, thread, depth, None, &[]);
    SpanGuard {
        live: Some(LiveSpan {
            writer: writer.clone(),
            name: name.to_string(),
            id,
            parent,
            depth,
            thread,
            start: Instant::now(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }),
    }
}

/// Opens a span on the global tracer. Inert when tracing is disabled.
pub fn span(name: &str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span on the global tracer with fields attached up front (they are
/// reported in the `span_close` event). Inert when tracing is disabled.
pub fn span_with(name: &str, fields: &[(&str, JsonValue)]) -> SpanGuard {
    match tracer() {
        Some(writer) => open_span(writer, name, fields),
        None => SpanGuard { live: None },
    }
}

/// Opens a span on a specific [`TraceWriter`] (always records). Used by tests
/// that want an isolated trace file independent of the global tracer.
pub fn span_on(writer: &TraceWriter, name: &str, fields: &[(&str, JsonValue)]) -> SpanGuard {
    open_span(writer, name, fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::validate::validate_trace;

    #[test]
    fn spans_nest_and_balance_on_an_isolated_writer() {
        let path = std::env::temp_dir().join(format!(
            "qec_obs_span_test_{}_{:x}.jsonl",
            std::process::id(),
            NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        ));
        let writer = TraceWriter::create(&path).unwrap();
        {
            let mut outer = span_on(&writer, "outer", &[("k", JsonValue::U64(7))]);
            outer.field("extra", 1u64);
            let _inner = span_on(&writer, "inner", &[]);
        }
        writer.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_trace(&text).unwrap();
        assert_eq!(summary.events, 4);
        assert_eq!(summary.spans, 2);
        // inner closes before outer.
        let lines: Vec<&str> = text.lines().collect();
        let close0 = JsonValue::parse(lines[2]).unwrap();
        assert_eq!(close0.get("name").unwrap().as_str(), Some("inner"));
        assert!(close0.get("parent").unwrap().as_u64().is_some());
        let close1 = JsonValue::parse(lines[3]).unwrap();
        assert_eq!(close1.get("name").unwrap().as_str(), Some("outer"));
        let fields = close1.get("fields").unwrap();
        assert_eq!(fields.get("k").unwrap().as_u64(), Some(7));
        assert_eq!(fields.get("extra").unwrap().as_u64(), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_global_span_is_inert() {
        // Tracing is never initialised in unit tests, so the global guard
        // must be a no-op.
        let mut guard = span("nothing");
        assert!(!guard.is_recording());
        guard.field("ignored", 0u64);
    }
}
