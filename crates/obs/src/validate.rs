//! Trace-file validation: every line parses as JSON, every event carries a
//! `type`, and span enter/close events nest correctly per thread.
//!
//! Shared by the `obs_validate` binary (used by `ci.sh` on the bench trace)
//! and the workspace property tests.

use std::collections::HashMap;

use crate::json::JsonValue;

/// Counts reported by [`validate_trace`] on success.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total event lines.
    pub events: usize,
    /// Completed spans (matched enter/close pairs).
    pub spans: usize,
    /// `metrics` registry-snapshot events.
    pub metrics_snapshots: usize,
}

/// Validates a JSON-lines trace: non-empty, each line a JSON object with a
/// string `type`, `span_enter`/`span_close` balanced in LIFO order per
/// thread, and close events matching their enter's `id` and `name`.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    // Per-thread stacks of (id, name) for open spans.
    let mut open: HashMap<u64, Vec<(u64, String)>> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            return Err(format!("line {lineno}: empty line"));
        }
        let event = JsonValue::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if event.as_object().is_none() {
            return Err(format!("line {lineno}: event is not a JSON object"));
        }
        let event_type = event
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string \"type\""))?;
        summary.events += 1;
        match event_type {
            "span_enter" | "span_close" => {
                let id = field_u64(&event, "id", lineno)?;
                let thread = field_u64(&event, "thread", lineno)?;
                let name = event
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("line {lineno}: span missing \"name\""))?;
                let stack = open.entry(thread).or_default();
                if event_type == "span_enter" {
                    stack.push((id, name.to_string()));
                } else {
                    let Some((open_id, open_name)) = stack.pop() else {
                        return Err(format!(
                            "line {lineno}: span_close {name:?} with no open span on thread {thread}"
                        ));
                    };
                    if open_id != id || open_name != name {
                        return Err(format!(
                            "line {lineno}: span_close ({id}, {name:?}) does not match open span ({open_id}, {open_name:?})"
                        ));
                    }
                    field_u64(&event, "dur_ns", lineno)?;
                    summary.spans += 1;
                }
            }
            "metrics" => {
                if event
                    .get("metrics")
                    .and_then(JsonValue::as_object)
                    .is_none()
                {
                    return Err(format!(
                        "line {lineno}: metrics event missing \"metrics\" object"
                    ));
                }
                summary.metrics_snapshots += 1;
            }
            _ => {}
        }
    }
    if summary.events == 0 {
        return Err("trace is empty".to_string());
    }
    for (thread, stack) in &open {
        if let Some((id, name)) = stack.last() {
            return Err(format!(
                "unclosed span ({id}, {name:?}) on thread {thread} at end of trace"
            ));
        }
    }
    Ok(summary)
}

fn field_u64(event: &JsonValue, key: &str, lineno: usize) -> Result<u64, String> {
    event
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("line {lineno}: missing u64 field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_balanced_trace() {
        let text = concat!(
            "{\"type\":\"span_enter\",\"id\":1,\"thread\":1,\"name\":\"a\"}\n",
            "{\"type\":\"span_enter\",\"id\":2,\"thread\":1,\"name\":\"b\"}\n",
            "{\"type\":\"span_close\",\"id\":2,\"thread\":1,\"name\":\"b\",\"dur_ns\":5}\n",
            "{\"type\":\"span_close\",\"id\":1,\"thread\":1,\"name\":\"a\",\"dur_ns\":9}\n",
            "{\"type\":\"metrics\",\"metrics\":{}}\n",
        );
        let s = validate_trace(text).unwrap();
        assert_eq!(
            s,
            TraceSummary {
                events: 5,
                spans: 2,
                metrics_snapshots: 1
            }
        );
    }

    #[test]
    fn rejects_bad_traces() {
        // Empty trace.
        assert!(validate_trace("").is_err());
        // Not JSON.
        assert!(validate_trace("not json\n").is_err());
        // Close without enter.
        assert!(validate_trace(
            "{\"type\":\"span_close\",\"id\":1,\"thread\":1,\"name\":\"a\",\"dur_ns\":1}\n"
        )
        .is_err());
        // Unclosed span at EOF.
        assert!(
            validate_trace("{\"type\":\"span_enter\",\"id\":1,\"thread\":1,\"name\":\"a\"}\n")
                .is_err()
        );
        // Interleaved close (LIFO violation on one thread).
        let text = concat!(
            "{\"type\":\"span_enter\",\"id\":1,\"thread\":1,\"name\":\"a\"}\n",
            "{\"type\":\"span_enter\",\"id\":2,\"thread\":1,\"name\":\"b\"}\n",
            "{\"type\":\"span_close\",\"id\":1,\"thread\":1,\"name\":\"a\",\"dur_ns\":1}\n",
            "{\"type\":\"span_close\",\"id\":2,\"thread\":1,\"name\":\"b\",\"dur_ns\":1}\n",
        );
        assert!(validate_trace(text).is_err());
    }
}
