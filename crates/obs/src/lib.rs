//! `qec-obs`: zero-dependency structured tracing and metrics for the
//! Flag-Proxy Networks reproduction.
//!
//! Three pieces, all std-only (consistent with the workspace's hermetic
//! policy):
//!
//! - **Spans** ([`span`], [`span_with`], [`SpanGuard`]): hierarchical,
//!   monotonically timed (`Instant`), nested via thread-local stacks. Each
//!   span writes a `span_enter` event on creation and a `span_close` event
//!   (with `dur_ns` and attached fields) on drop. When tracing is disabled —
//!   the default — a span is one relaxed atomic load, so instrumentation can
//!   stay in per-batch hot paths unconditionally.
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]):
//!   relaxed-atomic cells behind cheap cloneable handles, interned by name in
//!   a registry. Histograms are log₂-binned with associative, commutative
//!   snapshot merge, so per-worker views combine in any order.
//! - **JSON-lines trace emitter** ([`init_to_path`], [`init_from_env`],
//!   [`finish`]): one JSON object per line, validated by [`validate_trace`]
//!   and the `obs_validate` binary.
//!
//! Determinism contract: nothing in this crate is ever read by decode logic.
//! Enabling tracing changes what gets *written to the trace file*, never
//! which corrections a decoder produces — the workspace pins this with a
//! tracing-on/off bit-identity test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod json;
mod metrics;
mod span;
mod trace;
mod validate;
pub mod window;

pub use expo::{escape_label_value, render_registry, sanitize_metric_name, Exposition};
pub use json::{JsonValue, Record};
pub use metrics::{
    bin_index, bin_lower_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot,
    Registry, RegistrySnapshot, HISTOGRAM_BINS,
};
pub use span::{span, span_on, span_with, SpanGuard};
pub use trace::{
    emit_record, emit_registry, enabled, finish, global_registry, init_from_env, init_to_path,
    tracer, TraceWriter, DEFAULT_TRACE_PATH,
};
pub use validate::{validate_trace, TraceSummary};
pub use window::{
    Clock, ManualClock, MonotonicClock, RateCounter, WindowStats, WindowedHistogram, WINDOW_10S,
    WINDOW_1S, WINDOW_60S,
};
