//! Prometheus-style text exposition for registry and window snapshots.
//!
//! Renders any [`RegistrySnapshot`] (plus ad-hoc labelled samples, e.g.
//! rolling-window quantiles) to the Prometheus text format (version
//! 0.0.4) using only `std::fmt` — the workspace stays zero-dep, and any
//! standard scraper can consume `GET /metrics` from the serve telemetry
//! endpoint.
//!
//! Mapping rules:
//!
//! * Metric names are sanitised to `[a-zA-Z_:][a-zA-Z0-9_:]*` — the
//!   registry's dotted names (`serve.e2e_ns`) become underscored
//!   (`serve_e2e_ns`); any other invalid character also maps to `_`, and
//!   a leading digit gains a `_` prefix.
//! * Label values escape `\`, `"` and newline per the exposition spec.
//! * Counters render as `# TYPE <name> counter`, gauges as `gauge`.
//! * Log₂ histograms render as cumulative `<name>_bucket{le="..."}`
//!   series (one bucket per non-empty log₂ bin, `le` the bin's inclusive
//!   upper bound, strictly increasing) terminated by `le="+Inf"`, plus
//!   `<name>_sum` and `<name>_count` — the standard Prometheus histogram
//!   contract, so `histogram_quantile()` works on the scrape unchanged.

use std::fmt::Write as _;

use crate::metrics::{
    bin_lower_bound, HistogramSnapshot, MetricSnapshot, RegistrySnapshot, HISTOGRAM_BINS,
};

/// Sanitises a registry metric name into a valid Prometheus metric name.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format (`\` → `\\`,
/// `"` → `\"`, newline → `\n`).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// An in-progress text exposition. Append families, then [`finish`].
///
/// [`finish`]: Exposition::finish
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn labels(labels: &[(&str, String)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let body = labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v)))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }

    /// Appends one counter family.
    pub fn counter(&mut self, name: &str, value: u64) {
        let name = sanitize_metric_name(name);
        self.type_line(&name, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends one gauge family.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let name = sanitize_metric_name(name);
        self.type_line(&name, "gauge");
        let _ = writeln!(self.out, "{name} {}", fmt_f64(value));
    }

    /// Appends one gauge sample with labels under an existing or new
    /// family (the `TYPE` line is emitted on the first sample of the
    /// family; callers group samples of one family together).
    pub fn labeled_gauge(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        let sane = sanitize_metric_name(name);
        let type_line = format!("# TYPE {sane} gauge\n");
        if !self.out.contains(&type_line) {
            self.out.push_str(&type_line);
        }
        let _ = writeln!(
            self.out,
            "{sane}{} {}",
            Self::labels(labels),
            fmt_f64(value)
        );
    }

    /// Appends one histogram family as cumulative `_bucket` series plus
    /// `_sum`/`_count`, with optional extra labels on every sample.
    pub fn histogram(&mut self, name: &str, snap: &HistogramSnapshot, labels: &[(&str, String)]) {
        let name = sanitize_metric_name(name);
        self.type_line(&name, "histogram");
        let extra = Self::labels(labels);
        // Strip the braces so `le` can join the caller's labels.
        let extra_inner = extra
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .map(|s| format!("{s},"))
            .unwrap_or_default();
        let mut cumulative = 0u64;
        for (b, &n) in snap.bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            // The bin's inclusive upper bound; the top bin saturates at
            // u64::MAX and still gets a finite le before +Inf.
            let le = if b + 1 < HISTOGRAM_BINS {
                bin_lower_bound(b + 1) - 1
            } else {
                u64::MAX
            };
            let _ = writeln!(
                self.out,
                "{name}_bucket{{{extra_inner}le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            self.out,
            "{name}_bucket{{{extra_inner}le=\"+Inf\"}} {}",
            snap.count
        );
        let _ = writeln!(self.out, "{name}_sum{extra} {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count{extra} {}", snap.count);
    }

    /// Appends every metric of a registry snapshot, in name order.
    pub fn registry(&mut self, snapshot: &RegistrySnapshot) {
        for (name, metric) in &snapshot.metrics {
            match metric {
                MetricSnapshot::Counter(v) => self.counter(name, *v),
                MetricSnapshot::Gauge(v) => self.gauge(name, *v as f64),
                MetricSnapshot::Histogram(h) => self.histogram(name, h, &[]),
            }
        }
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Prometheus sample values are floats; render integers without a
/// fractional part and keep everything else shortest-roundtrip.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders a whole registry snapshot to exposition text — the one-call
/// form of [`Exposition`] used by `GET /metrics`.
pub fn render_registry(snapshot: &RegistrySnapshot) -> String {
    let mut expo = Exposition::new();
    expo.registry(snapshot);
    expo.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_sanitise_and_labels_escape() {
        assert_eq!(sanitize_metric_name("serve.e2e_ns"), "serve_e2e_ns");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c\"d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn golden_exposition_for_a_fixed_registry() {
        let reg = Registry::new();
        reg.counter("serve.requests").add(7);
        reg.gauge("build.sparse.memo_bytes").set(4096);
        // Escaping-hostile name: dots, a dash and a quote all sanitise.
        let h = reg.histogram("weird-name.\"q\".ns");
        for v in [0u64, 1, 1, 100, 5000] {
            h.record(v);
        }
        let text = render_registry(&reg.snapshot());
        let expected = "\
# TYPE build_sparse_memo_bytes gauge
build_sparse_memo_bytes 4096
# TYPE serve_requests counter
serve_requests 7
# TYPE weird_name__q__ns histogram
weird_name__q__ns_bucket{le=\"0\"} 1
weird_name__q__ns_bucket{le=\"1\"} 3
weird_name__q__ns_bucket{le=\"127\"} 4
weird_name__q__ns_bucket{le=\"8191\"} 5
weird_name__q__ns_bucket{le=\"+Inf\"} 5
weird_name__q__ns_sum 5102
weird_name__q__ns_count 5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_parses_back() {
        let reg = Registry::new();
        reg.counter("a.count").add(3);
        reg.gauge("b.gauge").set(9);
        let h = reg.histogram("c.hist");
        h.record(3);
        h.record(900);
        let text = render_registry(&reg.snapshot());

        // Parse-it-back sanity: every line is either a comment or
        // `name[{labels}] value`, names are valid, `le` bounds strictly
        // increase and the cumulative counts are monotone, ending in a
        // +Inf bucket equal to _count.
        let mut samples = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(matches!(kind, "counter" | "gauge" | "histogram"));
                assert_eq!(sanitize_metric_name(name), name, "TYPE name already sane");
                continue;
            }
            let (key, value) = line.rsplit_once(' ').expect("sample line");
            let value: f64 = value.parse().expect("sample value parses");
            samples.push((key.to_string(), value));
        }
        let get = |k: &str| {
            samples
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing sample {k}"))
        };
        assert_eq!(get("a_count"), 3.0);
        assert_eq!(get("b_gauge"), 9.0);
        assert_eq!(get("c_hist_count"), 2.0);
        assert_eq!(get("c_hist_sum"), 903.0);
        let buckets: Vec<(u64, f64)> = samples
            .iter()
            .filter_map(|(k, v)| {
                let le = k.strip_prefix("c_hist_bucket{le=\"")?.strip_suffix("\"}")?;
                Some((le.parse().unwrap_or(u64::MAX), *v))
            })
            .collect();
        assert!(buckets.len() >= 3, "two bins plus +Inf");
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0 || w[1].0 == u64::MAX, "le increases");
            assert!(w[0].1 <= w[1].1, "cumulative counts are monotone");
        }
        assert_eq!(buckets.last().unwrap().1, get("c_hist_count"));
    }

    #[test]
    fn windowed_samples_join_one_family() {
        let mut expo = Exposition::new();
        expo.labeled_gauge("serve.e2e_p99_ns", &[("window", "1s".into())], 100.0);
        expo.labeled_gauge("serve.e2e_p99_ns", &[("window", "10s".into())], 250.0);
        let text = expo.finish();
        assert_eq!(
            text.matches("# TYPE serve_e2e_p99_ns gauge").count(),
            1,
            "one TYPE line per family"
        );
        assert!(text.contains("serve_e2e_p99_ns{window=\"1s\"} 100"));
        assert!(text.contains("serve_e2e_p99_ns{window=\"10s\"} 250"));
    }
}
