//! Metrics: counters, gauges, log₂-binned histograms, and a name-interning
//! registry.
//!
//! All handles are cheap `Arc`-backed clones around relaxed atomics, so worker
//! threads bump the same underlying cells without coordination and a snapshot
//! is a plain relaxed read. Metrics deliberately have no feedback path into
//! decode logic: nothing in this module is read by a decoder.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{JsonValue, Record};

/// Number of histogram bins: bin 0 holds the value `0`, bin `b >= 1` holds
/// values in `[2^(b-1), 2^b)`, so 65 bins cover the full `u64` range.
pub const HISTOGRAM_BINS: usize = 65;

/// The histogram bin a value falls in (`0` for zero, else `floor(log2(v))+1`).
pub fn bin_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The smallest value that lands in `bin` (0-based; `bin < HISTOGRAM_BINS`).
pub fn bin_lower_bound(bin: usize) -> u64 {
    if bin == 0 {
        0
    } else {
        1u64 << (bin - 1)
    }
}

/// A monotonically increasing counter (relaxed atomic, clone-to-share).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (byte sizes, node counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds to the value (for gauges that aggregate several parts).
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    bins: [AtomicU64; HISTOGRAM_BINS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-binned histogram of `u64` samples (latencies in ns, sizes).
///
/// Recording is three relaxed `fetch_add`s — cheap enough for per-batch (and
/// even per-shot) hot paths. Snapshots merge associatively and commutatively,
/// so per-worker views can be combined in any order.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.bins[bin_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bins and totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bins: self
                .0
                .bins
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bin sample counts; `bins[b]` counts values in
    /// `[bin_lower_bound(b), bin_lower_bound(b + 1))`.
    pub bins: Vec<u64>,
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (wrapping only past `u64::MAX`).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            bins: vec![0; HISTOGRAM_BINS],
            count: 0,
            sum: 0,
        }
    }

    /// Records a sample directly into the snapshot (test/reference use).
    pub fn record(&mut self, value: u64) {
        self.bins[bin_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Element-wise merge. Associative and commutative: merging per-worker
    /// snapshots in any order or grouping yields the same result.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Whether the snapshot holds no samples. An empty snapshot has no
    /// quantiles — [`quantile`](Self::quantile) is `None` for every `q`
    /// — so call sites that would otherwise print a bogus `0` bound
    /// must either guard on this or spell out their `unwrap_or`
    /// default.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile of the recorded samples, as the **inclusive
    /// upper bound** of the log₂ bin holding the ⌈q·count⌉-th smallest
    /// sample — a conservative (never underestimating) SLO read, exact
    /// to within the bin's factor-of-two resolution. `q` is clamped to
    /// `[0, 1]`; returns `None` when the histogram is empty (guard with
    /// [`is_empty`](Self::is_empty) — there is no meaningful 0 bound to
    /// report for zero samples).
    ///
    /// This is how the serve/bench harnesses turn the `serve.e2e_ns`
    /// histogram into p50/p99/p999 latency numbers.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if b + 1 < HISTOGRAM_BINS {
                    bin_lower_bound(b + 1) - 1
                } else {
                    u64::MAX
                });
            }
        }
        Some(u64::MAX)
    }

    /// JSON form: `{"count":..,"sum":..,"bins":{"<bin>":<n>,..}}` with only
    /// non-empty bins listed (keys are bin indices).
    pub fn to_json(&self) -> JsonValue {
        let bins: Vec<(String, JsonValue)> = self
            .bins
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(b, &n)| (b.to_string(), JsonValue::U64(n)))
            .collect();
        Record::new()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("bins", JsonValue::Object(bins))
            .into_value()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A name-interning registry of metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-create: asking for the same name
/// twice returns a handle to the same underlying cell, which is what lets a
/// rebuilt decoder (after [`retarget`]) keep accumulating into the counters
/// its predecessor created. Clones share the same map.
///
/// [`retarget`]: ../fpn_core/struct.DecodingPipeline.html
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.inner.lock().expect("registry lock");
        RegistrySnapshot {
            metrics: map
                .iter()
                .map(|(name, metric)| {
                    let snap = match metric {
                        Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                        Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                    };
                    (name.clone(), snap)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram contents.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub metrics: Vec<(String, MetricSnapshot)>,
}

impl RegistrySnapshot {
    fn find(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// The counter named `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.find(name) {
            Some(MetricSnapshot::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge named `name`, or 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        match self.find(name) {
            Some(MetricSnapshot::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name) {
            Some(MetricSnapshot::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// JSON form: an object keyed by metric name, each value tagged with its
    /// `kind`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        MetricSnapshot::Counter(v) => Record::new()
                            .field("kind", "counter")
                            .field("value", *v)
                            .into_value(),
                        MetricSnapshot::Gauge(v) => Record::new()
                            .field("kind", "gauge")
                            .field("value", *v)
                            .into_value(),
                        MetricSnapshot::Histogram(h) => {
                            let mut rec = Record::new().field("kind", "histogram");
                            if let JsonValue::Object(fields) = h.to_json() {
                                for (k, v) in fields {
                                    rec.push(&k, v);
                                }
                            }
                            rec.into_value()
                        }
                    };
                    (name.clone(), value)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_edges() {
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_index(1), 1);
        assert_eq!(bin_index(2), 2);
        assert_eq!(bin_index(3), 2);
        assert_eq!(bin_index(4), 3);
        assert_eq!(bin_index(u64::MAX), 64);
        for b in 0..HISTOGRAM_BINS {
            assert_eq!(bin_index(bin_lower_bound(b)), b);
            if b > 0 {
                assert_eq!(bin_index(bin_lower_bound(b) - 1), b - 1);
            }
        }
    }

    #[test]
    fn registry_interns_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x"), 3);
        // A clone of the registry sees the same cell.
        let c = reg.clone().counter("x");
        c.inc();
        assert_eq!(a.get(), 4);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_clash() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        // Regression: an empty snapshot must be explicit about having
        // no quantiles (None for every q), never a bogus 0 bound.
        let empty = HistogramSnapshot::empty();
        assert!(empty.is_empty());
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(empty.quantile(q), None);
        }
        let mut h = HistogramSnapshot::empty();
        h.record(1);
        assert!(!h.is_empty());
        assert_eq!(h.quantile(0.5), Some(1));
    }

    #[test]
    fn quantiles_report_bin_upper_bounds() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
        let mut h = HistogramSnapshot::empty();
        // 99 fast samples in bin [64,128), one slow one in [4096,8192).
        for _ in 0..99 {
            h.record(100);
        }
        h.record(5000);
        assert_eq!(h.quantile(0.0), Some(127));
        assert_eq!(h.quantile(0.5), Some(127));
        // Nearest-rank p99 of 100 samples is the 99th smallest — still fast.
        assert_eq!(h.quantile(0.99), Some(127));
        // Only the maximum lands in the slow bin.
        assert_eq!(h.quantile(0.995), Some(8191));
        assert_eq!(h.quantile(1.0), Some(8191));
        // Quantiles are monotone in q.
        let mut last = 0;
        for q in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= last);
            last = v;
        }
        // The top bin saturates rather than overflowing.
        let mut top = HistogramSnapshot::empty();
        top.record(u64::MAX);
        assert_eq!(top.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn histogram_counts_and_merge() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 1024] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1033);
        assert_eq!(snap.bins.iter().sum::<u64>(), 5);
        assert_eq!(snap.bins[bin_index(7)], 1);
        assert_eq!(snap.bins[bin_index(1)], 2);

        let mut a = snap.clone();
        let mut b = HistogramSnapshot::empty();
        b.record(7);
        a.merge(&b);
        let mut c = b.clone();
        c.merge(&snap);
        assert_eq!(a, c);
    }
}
