//! Windowed metrics: rolling-window histograms and rate counters for a
//! long-lived service.
//!
//! The cumulative [`Histogram`](crate::Histogram) answers "what happened
//! since the process started"; a live service also needs "what is the p99
//! *right now*". [`WindowedHistogram`] and [`RateCounter`] answer that with
//! a ring of epoch-stamped buckets: time is divided into fixed-width slots
//! (1 s by default), each ring entry carries the slot index it currently
//! represents, and recording is O(1) lock-free — a clock read, one stamp
//! check, and a few relaxed `fetch_add`s. A rolling snapshot merges the
//! slots whose stamps fall inside the requested window using the existing
//! associative [`HistogramSnapshot::merge`], so 1 s / 10 s / 60 s views all
//! come from the same ring.
//!
//! Time is injected through the [`Clock`] trait: production uses
//! [`MonotonicClock`] (a stored `Instant`), tests use [`ManualClock`] and
//! tick it explicitly, which makes slot rollover — normally a wall-clock
//! race — fully deterministic.
//!
//! Accuracy contract: a record that races a slot rollover on another
//! thread may land in the adjacent window or be dropped from the rolled
//! slot; windows are telemetry, not accounting, and the cumulative
//! histograms remain exact. Nothing here is ever read by decode logic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{bin_index, HistogramSnapshot, HISTOGRAM_BINS};

/// Nanoseconds per second (the default slot width, and the 1 s window).
pub const WINDOW_1S: u64 = 1_000_000_000;
/// The 10 s rolling window, in nanoseconds.
pub const WINDOW_10S: u64 = 10 * WINDOW_1S;
/// The 60 s rolling window, in nanoseconds.
pub const WINDOW_60S: u64 = 60 * WINDOW_1S;

/// A monotonic nanosecond clock, injectable so tests control time.
///
/// Implementations must be monotonic (never decrease) per instance;
/// absolute origin is arbitrary (typically "when the service started").
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// Production clock: nanoseconds since construction, via `Instant`.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl MonotonicClock {
    /// A fresh clock whose epoch is "now".
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Test clock: time advances only when told to, so slot rollovers happen
/// exactly where the test puts them.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A fresh clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute time (must not go backwards).
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Ring size: windows up to 60 s (61 distinct slots at the default 1 s
/// slot width: 60 complete + the current partial) fit with headroom.
const RING_SLOTS: usize = 64;

/// One ring entry: the slot index it represents (`stamp`, 0 = never
/// used; stored as `slot_index + 1`) plus a full log₂-bin histogram.
struct WindowSlot {
    stamp: AtomicU64,
    bins: [AtomicU64; HISTOGRAM_BINS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl WindowSlot {
    fn new() -> Self {
        WindowSlot {
            stamp: AtomicU64::new(0),
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.bins {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Claims this entry for `stamp` (slot index + 1), resetting its
    /// contents when it still represents an older slot. The CAS winner
    /// resets; losers proceed and record into the fresh slot.
    fn claim(&self, stamp: u64) {
        let prev = self.stamp.load(Ordering::Acquire);
        if prev != stamp
            && self
                .stamp
                .compare_exchange(prev, stamp, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.reset();
        }
    }
}

struct WindowCore {
    clock: Arc<dyn Clock>,
    slot_ns: u64,
    slots: Vec<WindowSlot>,
}

impl WindowCore {
    fn new(clock: Arc<dyn Clock>, slot_ns: u64) -> Self {
        WindowCore {
            clock,
            slot_ns: slot_ns.max(1),
            slots: (0..RING_SLOTS).map(|_| WindowSlot::new()).collect(),
        }
    }

    /// The current slot stamp (slot index + 1, so 0 means "never").
    fn stamp_now(&self) -> u64 {
        self.clock.now_ns() / self.slot_ns + 1
    }

    /// The claimed ring entry for the current instant.
    fn current(&self) -> (&WindowSlot, u64) {
        let stamp = self.stamp_now();
        let slot = &self.slots[(stamp as usize) % self.slots.len()];
        slot.claim(stamp);
        (slot, stamp)
    }

    /// How many slots a `window_ns` rolling window spans (the current
    /// partial slot included), clamped to what the ring can hold.
    fn window_slots(&self, window_ns: u64) -> u64 {
        (window_ns / self.slot_ns)
            .max(1)
            .min(self.slots.len() as u64 - 1)
    }

    /// Calls `f` for every ring entry inside the rolling window ending now.
    fn for_each_live<F: FnMut(&WindowSlot)>(&self, window_ns: u64, mut f: F) {
        let now = self.stamp_now();
        let span = self.window_slots(window_ns);
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp != 0 && stamp <= now && stamp + span > now {
                f(slot);
            }
        }
    }
}

impl std::fmt::Debug for WindowCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WindowCore(slot_ns={}, slots={})",
            self.slot_ns,
            self.slots.len()
        )
    }
}

/// Rolling stats extracted from a windowed histogram: the merged
/// snapshot's quantiles plus the event rate over the window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// The window these stats cover, in nanoseconds.
    pub window_ns: u64,
    /// Samples recorded inside the window.
    pub count: u64,
    /// Sum of samples inside the window.
    pub sum: u64,
    /// p50 (`None` when the window is empty).
    pub p50: Option<u64>,
    /// p99 (`None` when the window is empty).
    pub p99: Option<u64>,
    /// p999 (`None` when the window is empty).
    pub p999: Option<u64>,
    /// Events per second over the window.
    pub per_sec: f64,
}

/// A rolling-window log₂ histogram over an injectable [`Clock`].
///
/// Recording is O(1) and lock-free; snapshots over any window up to 60 s
/// merge the ring's live slots with [`HistogramSnapshot::merge`]. Clones
/// share the ring (cheap `Arc`-backed handles, like every other metric).
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    core: Arc<WindowCore>,
}

impl WindowedHistogram {
    /// A fresh ring over the given clock, with 1 s slots.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_slot_ns(clock, WINDOW_1S)
    }

    /// A fresh ring with an explicit slot width (tests use small slots).
    pub fn with_slot_ns(clock: Arc<dyn Clock>, slot_ns: u64) -> Self {
        WindowedHistogram {
            core: Arc::new(WindowCore::new(clock, slot_ns)),
        }
    }

    /// Records one sample at the current clock instant.
    #[inline]
    pub fn record(&self, value: u64) {
        let (slot, _) = self.core.current();
        slot.bins[bin_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The merged snapshot of all samples inside the rolling window of
    /// `window_ns` ending now. Merging is the associative
    /// [`HistogramSnapshot::merge`], so this composes with every existing
    /// quantile/JSON path.
    pub fn snapshot(&self, window_ns: u64) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        self.core.for_each_live(window_ns, |slot| {
            let mut part = HistogramSnapshot::empty();
            for (dst, src) in part.bins.iter_mut().zip(&slot.bins) {
                *dst = src.load(Ordering::Relaxed);
            }
            part.count = slot.count.load(Ordering::Relaxed);
            part.sum = slot.sum.load(Ordering::Relaxed);
            merged.merge(&part);
        });
        merged
    }

    /// Rolling quantiles and event rate over `window_ns`.
    pub fn stats(&self, window_ns: u64) -> WindowStats {
        let snap = self.snapshot(window_ns);
        WindowStats {
            window_ns,
            count: snap.count,
            sum: snap.sum,
            p50: snap.quantile(0.5),
            p99: snap.quantile(0.99),
            p999: snap.quantile(0.999),
            per_sec: snap.count as f64 / (window_ns.max(1) as f64 / WINDOW_1S as f64),
        }
    }

    /// The largest sample bin's inclusive upper bound inside the window
    /// (`None` when empty) — how `/healthz` reports max-depth-over-window.
    pub fn max_over(&self, window_ns: u64) -> Option<u64> {
        self.snapshot(window_ns).quantile(1.0)
    }
}

/// A rolling-window event counter over an injectable [`Clock`].
///
/// Same epoch-stamped ring as [`WindowedHistogram`], but each slot is a
/// single counter — `serve.rejected` / `serve.deadline_misses` style
/// events whose *rate* matters for health, not their distribution.
#[derive(Debug, Clone)]
pub struct RateCounter {
    core: Arc<WindowCore>,
}

impl RateCounter {
    /// A fresh ring over the given clock, with 1 s slots.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_slot_ns(clock, WINDOW_1S)
    }

    /// A fresh ring with an explicit slot width (tests use small slots).
    pub fn with_slot_ns(clock: Arc<dyn Clock>, slot_ns: u64) -> Self {
        RateCounter {
            core: Arc::new(WindowCore::new(clock, slot_ns)),
        }
    }

    /// Counts one event at the current clock instant.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Counts `n` events at the current clock instant.
    #[inline]
    pub fn add(&self, n: u64) {
        let (slot, _) = self.core.current();
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Events inside the rolling window of `window_ns` ending now.
    pub fn events_in(&self, window_ns: u64) -> u64 {
        let mut total = 0u64;
        self.core.for_each_live(window_ns, |slot| {
            total += slot.count.load(Ordering::Relaxed)
        });
        total
    }

    /// Events per second over the rolling window.
    pub fn per_sec(&self, window_ns: u64) -> f64 {
        self.events_in(window_ns) as f64 / (window_ns.max(1) as f64 / WINDOW_1S as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<ManualClock>, WindowedHistogram) {
        let clock = Arc::new(ManualClock::new());
        let hist = WindowedHistogram::new(clock.clone() as Arc<dyn Clock>);
        (clock, hist)
    }

    #[test]
    fn rolling_windows_age_out_deterministically() {
        let (clock, hist) = setup();
        // t = 0 s: two fast samples.
        hist.record(100);
        hist.record(100);
        // t = 5 s: one slow sample.
        clock.set(5 * WINDOW_1S);
        hist.record(5000);
        // 1 s window sees only the slow sample; 10 s window sees all.
        assert_eq!(hist.snapshot(WINDOW_1S).count, 1);
        let all = hist.snapshot(WINDOW_10S);
        assert_eq!(all.count, 3);
        assert_eq!(all.sum, 5200);
        // p99 over 10 s is dominated by the slow sample's bin bound.
        assert_eq!(all.quantile(0.99), Some(8191));
        // t = 9.5 s: the fast samples (slot 0) leave the 10 s window at
        // t = 10 s (slots 1..=10 remain).
        clock.set(9 * WINDOW_1S + WINDOW_1S / 2);
        assert_eq!(hist.snapshot(WINDOW_10S).count, 3);
        clock.set(10 * WINDOW_1S);
        assert_eq!(hist.snapshot(WINDOW_10S).count, 1);
        // t = 70 s: everything has aged out of every window.
        clock.set(70 * WINDOW_1S);
        assert_eq!(hist.snapshot(WINDOW_60S).count, 0);
        assert_eq!(hist.stats(WINDOW_60S).p99, None);
    }

    #[test]
    fn ring_reuses_slots_after_wraparound() {
        let (clock, hist) = setup();
        hist.record(1);
        // Jump far enough that slot 0's ring entry is reused: same ring
        // index, different stamp. The stale contents must be discarded.
        clock.set(RING_SLOTS as u64 * WINDOW_1S);
        hist.record(7);
        let snap = hist.snapshot(WINDOW_60S);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 7);
    }

    #[test]
    fn stats_report_rates_and_quantiles() {
        let (clock, hist) = setup();
        for _ in 0..100 {
            hist.record(1000);
        }
        clock.set(WINDOW_1S / 2);
        let s = hist.stats(WINDOW_10S);
        assert_eq!(s.count, 100);
        assert_eq!(s.per_sec, 10.0);
        assert_eq!(s.p50, Some(1023));
        assert_eq!(s.p999, Some(1023));
        assert_eq!(hist.max_over(WINDOW_10S), Some(1023));
        // 1 s window: same samples, 100× the rate.
        assert_eq!(hist.stats(WINDOW_1S).per_sec, 100.0);
    }

    #[test]
    fn rate_counter_windows() {
        let clock = Arc::new(ManualClock::new());
        let rate = RateCounter::new(clock.clone() as Arc<dyn Clock>);
        rate.add(5);
        clock.set(3 * WINDOW_1S);
        rate.inc();
        assert_eq!(rate.events_in(WINDOW_1S), 1);
        assert_eq!(rate.events_in(WINDOW_10S), 6);
        assert_eq!(rate.per_sec(WINDOW_10S), 0.6);
        clock.set(20 * WINDOW_1S);
        assert_eq!(rate.events_in(WINDOW_10S), 0);
    }

    #[test]
    fn shared_handles_record_into_one_ring() {
        let (clock, hist) = setup();
        let clone = hist.clone();
        hist.record(1);
        clone.record(2);
        let _ = &clock;
        assert_eq!(hist.snapshot(WINDOW_1S).count, 2);
    }

    #[test]
    fn manual_clock_ticks() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(10);
        clock.advance(5);
        assert_eq!(clock.now_ns(), 15);
        let real = MonotonicClock::new();
        let a = real.now_ns();
        let b = real.now_ns();
        assert!(b >= a);
    }
}
