//! Minimal JSON support: a value tree, a compact single-line writer, and a
//! strict recursive-descent parser.
//!
//! The workspace is hermetic (no external crates), so the trace emitter and
//! its validator share this hand-rolled implementation. The writer always
//! produces compact output (no whitespace) so each trace event is exactly one
//! line; the parser is strict RFC-8259 minus a few exotica (it rejects
//! trailing garbage, unbalanced structures and malformed escapes, which is
//! precisely what the trace validator needs to catch).

use std::fmt;

/// A parsed or constructed JSON value.
///
/// Numbers keep their original flavour (`U64`/`I64`/`F64`) when constructed
/// programmatically so counters round-trip exactly; the parser produces the
/// narrowest variant that represents the literal losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (counters, sizes, nanosecond timings).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values serialise as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, as an ordered list of `(key, value)` pairs. Insertion order is
    /// preserved on write, which keeps emitted records stable and greppable.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            JsonValue::I64(v) => u64::try_from(v).ok(),
            JsonValue::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly within 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::I64(v) => Some(v as f64),
            JsonValue::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::U64(v) => {
                let mut buf = [0u8; 20];
                out.push_str(format_u64(*v, &mut buf));
            }
            JsonValue::I64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip Display is valid JSON for all
                    // finite doubles (no exponent suffix surprises).
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut cur = Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        };
        cur.skip_ws();
        let value = cur.parse_value()?;
        cur.skip_ws();
        if cur.pos != cur.bytes.len() {
            return Err(format!("trailing content at byte {}", cur.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn format_u64(v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

pub(crate) fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(u64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<u128> for JsonValue {
    /// Saturating: nanosecond totals beyond ~585 years clamp to `u64::MAX`.
    fn from(v: u128) -> Self {
        JsonValue::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                        .ok_or_else(|| "invalid surrogate pair".to_string())?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                            // parse_hex4 already advanced past the digits; undo
                            // the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8; find the char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control byte in string at {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// An ordered JSON-object builder for one-line records.
///
/// Used for every trace event and every `qec-bench` stdout record, so field
/// order in the output is exactly construction order (stable diffs, easy
/// greps).
#[derive(Debug, Clone, Default)]
pub struct Record {
    fields: Vec<(String, JsonValue)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Record { fields: Vec::new() }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Appends a field in place.
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) {
        self.fields.push((key.to_string(), value.into()));
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(String, JsonValue)] {
        &self.fields
    }

    /// Looks up a previously added field.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Converts into a [`JsonValue::Object`], preserving field order.
    pub fn into_value(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }

    /// Serialises to one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64);
        JsonValue::Object(self.fields.clone()).write(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_record() {
        let rec = Record::new()
            .field("component", "bench")
            .field("iters", 42u64)
            .field("ratio", 1.5f64)
            .field("ok", true)
            .field("note", JsonValue::Null);
        let line = rec.to_line();
        assert_eq!(
            line,
            r#"{"component":"bench","iters":42,"ratio":1.5,"ok":true,"note":null}"#
        );
        let parsed = JsonValue::parse(&line).unwrap();
        assert_eq!(parsed.get("component").unwrap().as_str(), Some("bench"));
        assert_eq!(parsed.get("iters").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("note"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_nested_and_escapes() {
        let text = r#"{"a":[1,-2,3.5,{"b":"x\n\"y\"","u":"\u00e9\ud83d\ude00"}],"e":[]}"#;
        let v = JsonValue::parse(text).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], JsonValue::I64(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        let obj = &arr[3];
        assert_eq!(obj.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(obj.get("u").unwrap().as_str(), Some("é😀"));
        assert_eq!(v.get("e").unwrap().as_array().unwrap().len(), 0);
        // Writer output re-parses to the same tree.
        let rewritten = v.to_string();
        assert_eq!(JsonValue::parse(&rewritten).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
            "[1]]",
            "-",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn large_u64_roundtrips_exactly() {
        let v = JsonValue::U64(u64::MAX);
        let text = v.to_string();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(JsonValue::parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }
}
