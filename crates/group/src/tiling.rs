//! Extraction of `{r,s}` tilings (and their truncations) from finite
//! triangle-group quotients.
//!
//! A finite quotient of the von Dyck group `Δ⁺(r,s,2)` acts regularly on
//! itself; the orbits of `⟨x⟩`, `⟨y⟩` and `⟨xy⟩` are the faces, vertices
//! and edges of an `{r,s}` tiling of a closed surface (Breuckmann–Terhal
//! construction). A finite quotient of the *full* triangle group `[p,q]`
//! similarly yields the truncated tiling whose corners, vertex-polygons
//! and face-polygons form the trivalent 3-face-colorable lattice of a
//! hyperbolic color code.

use crate::{word, CosetTable};
use qec_math::graph::two_coloring;
use std::fmt;

/// Error produced when a quotient does not define a clean tiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TilingError {
    /// A rotation generator does not have the full expected order.
    WrongGeneratorOrder {
        /// Which generator ("x", "y", "xy", ...).
        generator: &'static str,
        /// The order it should have.
        expected: usize,
        /// The order it has in the quotient.
        actual: usize,
    },
    /// The edge involution has fixed points (dangling half-edges).
    EdgeInvolutionFixedPoint,
    /// Some face or vertex touches the same edge twice (self-glued cell);
    /// such tilings give degenerate checks.
    DegenerateCell(&'static str),
    /// The face set of the tiling is not 2-colorable, so no color code
    /// can be built from its truncation.
    NotTwoColorable,
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::WrongGeneratorOrder {
                generator,
                expected,
                actual,
            } => write!(
                f,
                "generator {generator} has order {actual} in the quotient, expected {expected}"
            ),
            TilingError::EdgeInvolutionFixedPoint => {
                write!(f, "edge involution has fixed points")
            }
            TilingError::DegenerateCell(kind) => {
                write!(f, "degenerate {kind}: repeats an incident edge")
            }
            TilingError::NotTwoColorable => {
                write!(f, "tiling faces are not 2-colorable")
            }
        }
    }
}

impl std::error::Error for TilingError {}

/// A combinatorial `{r,s}` tiling of a closed surface.
///
/// Faces are `r`-gons, `s` of which meet at every vertex. In the
/// hyperbolic-surface-code interpretation each edge is a data qubit,
/// each face an X check and each vertex a Z check (Fig. 2 of the paper).
#[derive(Debug, Clone)]
pub struct Tiling {
    /// Face size.
    pub r: usize,
    /// Vertex degree.
    pub s: usize,
    /// `face_edges[f]` lists the `r` distinct edges of face `f`.
    pub face_edges: Vec<Vec<usize>>,
    /// `vertex_edges[v]` lists the `s` distinct edges at vertex `v`.
    pub vertex_edges: Vec<Vec<usize>>,
    /// `edge_faces[e]` is the pair of faces adjacent to edge `e`.
    pub edge_faces: Vec<(usize, usize)>,
    /// `edge_vertices[e]` is the pair of endpoints of edge `e`.
    pub edge_vertices: Vec<(usize, usize)>,
}

impl Tiling {
    /// Builds the `{r,s}` tiling from the regular coset table of a
    /// finite von Dyck quotient `⟨x, y | xʳ, yˢ, (xy)², …⟩`.
    ///
    /// # Errors
    ///
    /// Returns a [`TilingError`] if the quotient is degenerate: the
    /// rotations do not have full order, the edge involution has fixed
    /// points, or some cell is glued to itself along an edge.
    pub fn from_von_dyck(table: &CosetTable, r: usize, s: usize) -> Result<Self, TilingError> {
        let x = word::gen(0);
        let y = word::gen(1);
        let z = word::concat(&[&x, &y]);
        for (w, name, expect) in [(&x, "x", r), (&y, "y", s), (&z, "xy", 2)] {
            let actual = table.word_order(w);
            if actual != expect {
                return Err(TilingError::WrongGeneratorOrder {
                    generator: name,
                    expected: expect,
                    actual,
                });
            }
        }
        let n = table.num_cosets();
        let zperm = table.word_permutation(&z);
        if (0..n).any(|g| zperm[g] == g) {
            return Err(TilingError::EdgeInvolutionFixedPoint);
        }
        let (face_of, num_faces) = table.orbits(std::slice::from_ref(&x));
        let (vertex_of, num_vertices) = table.orbits(std::slice::from_ref(&y));
        // Edges: pairs {g, z(g)}.
        let mut edge_of = vec![usize::MAX; n];
        let mut num_edges = 0;
        for g in 0..n {
            if edge_of[g] == usize::MAX {
                edge_of[g] = num_edges;
                edge_of[zperm[g]] = num_edges;
                num_edges += 1;
            }
        }
        let mut edge_faces = vec![(usize::MAX, usize::MAX); num_edges];
        let mut edge_vertices = vec![(usize::MAX, usize::MAX); num_edges];
        let mut face_edges = vec![Vec::new(); num_faces];
        let mut vertex_edges = vec![Vec::new(); num_vertices];
        for g in 0..n {
            if g > zperm[g] {
                continue; // handle each edge once, from its smaller dart
            }
            let h = zperm[g];
            let e = edge_of[g];
            edge_faces[e] = (face_of[g], face_of[h]);
            edge_vertices[e] = (vertex_of[g], vertex_of[h]);
            face_edges[face_of[g]].push(e);
            if face_of[h] != face_of[g] {
                face_edges[face_of[h]].push(e);
            }
            vertex_edges[vertex_of[g]].push(e);
            if vertex_of[h] != vertex_of[g] {
                vertex_edges[vertex_of[h]].push(e);
            }
        }
        // Non-degeneracy: faces must have exactly r distinct edges,
        // vertices exactly s.
        for fe in &face_edges {
            if fe.len() != r {
                return Err(TilingError::DegenerateCell("face"));
            }
        }
        for ve in &vertex_edges {
            if ve.len() != s {
                return Err(TilingError::DegenerateCell("vertex"));
            }
        }
        Ok(Tiling {
            r,
            s,
            face_edges,
            vertex_edges,
            edge_faces,
            edge_vertices,
        })
    }

    /// Number of faces.
    pub fn num_faces(&self) -> usize {
        self.face_edges.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_edges.len()
    }

    /// Number of edges (data qubits of the surface code).
    pub fn num_edges(&self) -> usize {
        self.edge_faces.len()
    }

    /// Euler characteristic `V - E + F` of the underlying surface.
    pub fn euler_characteristic(&self) -> i64 {
        self.num_vertices() as i64 - self.num_edges() as i64 + self.num_faces() as i64
    }
}

/// Color of a color-code plaquette.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlaqColor {
    /// Red plaquettes (vertex `2r`-gons of the truncated tiling).
    Red,
    /// Green plaquettes (one class of face `s`-gons).
    Green,
    /// Blue plaquettes (the other class of face `s`-gons).
    Blue,
}

impl fmt::Display for PlaqColor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaqColor::Red => write!(f, "R"),
            PlaqColor::Green => write!(f, "G"),
            PlaqColor::Blue => write!(f, "B"),
        }
    }
}

/// A trivalent, 3-face-colorable lattice obtained by truncating a
/// `{p,q}` tiling: the substrate of a hyperbolic color code with red
/// `q`-gon plaquettes and green/blue `2p`-gon plaquettes.
///
/// In the paper's `{r,s}` color-code notation, red plaquettes have
/// `2r = q` corners and green/blue have `s = 2p`, i.e. this truncates
/// the `{s/2, 2r}` tiling.
#[derive(Debug, Clone)]
pub struct ColorTiling {
    /// Number of lattice vertices (data qubits).
    pub num_corners: usize,
    /// Plaquettes: color and the sorted list of incident corners.
    pub plaquettes: Vec<(PlaqColor, Vec<usize>)>,
}

impl ColorTiling {
    /// Builds the truncated tiling from the regular coset table of a
    /// finite full-triangle-group quotient
    /// `[p,q] = ⟨a,b,c | a²,b²,c²,(ab)ᵖ,(bc)^q,(ca)², …⟩`.
    ///
    /// Corners (data qubits) are the `⟨c⟩`-orbits of flags; red
    /// plaquettes the `⟨b,c⟩`-orbits (around vertices); green/blue
    /// plaquettes the `⟨a,b⟩`-orbits (around faces), split by a proper
    /// 2-coloring of the face-adjacency graph.
    ///
    /// # Errors
    ///
    /// Returns a [`TilingError`] on degenerate quotients or when the
    /// faces are not 2-colorable.
    pub fn from_triangle_group(
        table: &CosetTable,
        p: usize,
        q: usize,
    ) -> Result<Self, TilingError> {
        let a = word::gen(0);
        let b = word::gen(1);
        let c = word::gen(2);
        let ab = word::concat(&[&a, &b]);
        let bc = word::concat(&[&b, &c]);
        for (w, name, expect) in [(&ab, "ab", p), (&bc, "bc", q)] {
            let actual = table.word_order(w);
            if actual != expect {
                return Err(TilingError::WrongGeneratorOrder {
                    generator: name,
                    expected: expect,
                    actual,
                });
            }
        }
        let n = table.num_cosets();
        let cperm = table.word_permutation(&c);
        if (0..n).any(|g| cperm[g] == g) {
            return Err(TilingError::EdgeInvolutionFixedPoint);
        }
        // Corners: ⟨c⟩-orbits.
        let mut corner_of = vec![usize::MAX; n];
        let mut num_corners = 0;
        for g in 0..n {
            if corner_of[g] == usize::MAX {
                corner_of[g] = num_corners;
                corner_of[cperm[g]] = num_corners;
                num_corners += 1;
            }
        }
        let (red_of, num_red) = table.orbits(&[b.clone(), c.clone()]);
        let (face_of, num_face) = table.orbits(&[a.clone(), b.clone()]);

        // Supports.
        let mut red_support = vec![Vec::new(); num_red];
        let mut face_support = vec![Vec::new(); num_face];
        for g in 0..n {
            red_support[red_of[g]].push(corner_of[g]);
            face_support[face_of[g]].push(corner_of[g]);
        }
        for sup in red_support.iter_mut() {
            sup.sort_unstable();
            sup.dedup();
            if sup.len() != q {
                return Err(TilingError::DegenerateCell("red plaquette"));
            }
        }
        for sup in face_support.iter_mut() {
            sup.sort_unstable();
            sup.dedup();
            if sup.len() != 2 * p {
                return Err(TilingError::DegenerateCell("face plaquette"));
            }
        }
        // 2-color the faces: adjacent faces are linked by the c
        // reflection across a shared edge.
        let mut adj = vec![Vec::new(); num_face];
        for g in 0..n {
            let (f1, f2) = (face_of[g], face_of[cperm[g]]);
            if f1 != f2 {
                adj[f1].push(f2);
            }
        }
        let colors = two_coloring(&adj).ok_or(TilingError::NotTwoColorable)?;

        let mut plaquettes = Vec::with_capacity(num_red + num_face);
        for sup in red_support {
            plaquettes.push((PlaqColor::Red, sup));
        }
        for (f, sup) in face_support.into_iter().enumerate() {
            let color = if colors[f] == 0 {
                PlaqColor::Green
            } else {
                PlaqColor::Blue
            };
            plaquettes.push((color, sup));
        }
        Ok(ColorTiling {
            num_corners,
            plaquettes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_cosets, triangle_group, von_dyck};

    #[test]
    fn icosahedral_tiling() {
        // {3,5} on the sphere: 20 faces, 12 vertices, 30 edges.
        let table = enumerate_cosets(&von_dyck(3, 5, &[]), &[], 1000).unwrap();
        let t = Tiling::from_von_dyck(&table, 3, 5).unwrap();
        assert_eq!(t.num_faces(), 20);
        assert_eq!(t.num_vertices(), 12);
        assert_eq!(t.num_edges(), 30);
        assert_eq!(t.euler_characteristic(), 2);
        // Every edge borders two distinct faces and vertices.
        for &(f1, f2) in &t.edge_faces {
            assert_ne!(f1, f2);
        }
        for &(v1, v2) in &t.edge_vertices {
            assert_ne!(v1, v2);
        }
    }

    #[test]
    fn cube_tiling_incidences_consistent() {
        let table = enumerate_cosets(&von_dyck(4, 3, &[]), &[], 1000).unwrap();
        let t = Tiling::from_von_dyck(&table, 4, 3).unwrap();
        assert_eq!((t.num_faces(), t.num_vertices(), t.num_edges()), (6, 8, 12));
        // Face-edge and edge-face agree.
        for (f, fe) in t.face_edges.iter().enumerate() {
            for &e in fe {
                let (a, b) = t.edge_faces[e];
                assert!(a == f || b == f);
            }
        }
        // A face and a vertex share 0 or 2 edges (commutation).
        for fe in &t.face_edges {
            for ve in &t.vertex_edges {
                let shared = fe.iter().filter(|e| ve.contains(e)).count();
                assert!(shared % 2 == 0, "face/vertex share {shared} edges");
            }
        }
    }

    #[test]
    fn truncated_cube_color_tiling() {
        // [3,4] truncation: corners = 24 (truncated octahedron vertices),
        // red 4-gons... here q=4-gons at vertices: 6 squares? For {p,q} =
        // {3,4}: 8 triangular faces -> 6-gons (green/blue), 6 vertices ->
        // red 4-gons. Face adjacency of the octahedron is bipartite.
        let table = enumerate_cosets(&triangle_group(3, 4, &[]), &[], 1000).unwrap();
        let ct = ColorTiling::from_triangle_group(&table, 3, 4).unwrap();
        assert_eq!(ct.num_corners, 24);
        let reds = ct
            .plaquettes
            .iter()
            .filter(|(c, _)| *c == PlaqColor::Red)
            .count();
        let greens = ct
            .plaquettes
            .iter()
            .filter(|(c, _)| *c == PlaqColor::Green)
            .count();
        let blues = ct
            .plaquettes
            .iter()
            .filter(|(c, _)| *c == PlaqColor::Blue)
            .count();
        assert_eq!(reds, 6);
        assert_eq!(greens + blues, 8);
        assert_eq!(greens, blues);
        // Every corner lies on exactly one plaquette of each color.
        let mut per_corner = vec![[0usize; 3]; ct.num_corners];
        for (color, sup) in &ct.plaquettes {
            let idx = match color {
                PlaqColor::Red => 0,
                PlaqColor::Green => 1,
                PlaqColor::Blue => 2,
            };
            for &q in sup {
                per_corner[q][idx] += 1;
            }
        }
        assert!(per_corner.iter().all(|c| *c == [1, 1, 1]));
        // Pairwise even overlap (CSS commutation).
        for (i, (_, a)) in ct.plaquettes.iter().enumerate() {
            for (_, b) in ct.plaquettes.iter().skip(i + 1) {
                let shared = a.iter().filter(|x| b.contains(x)).count();
                assert_eq!(shared % 2, 0);
            }
        }
    }

    #[test]
    fn tetrahedron_not_two_colorable() {
        // {3,3}: face adjacency of the tetrahedron is K4, not bipartite.
        let table = enumerate_cosets(&triangle_group(3, 3, &[]), &[], 1000).unwrap();
        assert_eq!(
            ColorTiling::from_triangle_group(&table, 3, 3).unwrap_err(),
            TilingError::NotTwoColorable
        );
    }
}
