//! Group presentations and words.

/// A word in the generators of a presentation.
///
/// Letters are nonzero integers: `+(i+1)` denotes generator `i`,
/// `-(i+1)` its inverse. The helpers in [`word`] build words without
/// having to remember the encoding.
pub type Word = Vec<i32>;

/// Helpers for building [`Word`]s.
pub mod word {
    use super::Word;

    /// The single-letter word for generator `i`.
    pub fn gen(i: usize) -> Word {
        vec![i as i32 + 1]
    }

    /// The single-letter word for the inverse of generator `i`.
    pub fn inv_gen(i: usize) -> Word {
        vec![-(i as i32 + 1)]
    }

    /// Concatenates words.
    pub fn concat(parts: &[&Word]) -> Word {
        parts.iter().flat_map(|w| w.iter().copied()).collect()
    }

    /// The `k`-th power of a word.
    pub fn pow(w: &Word, k: usize) -> Word {
        let mut out = Word::with_capacity(w.len() * k);
        for _ in 0..k {
            out.extend_from_slice(w);
        }
        out
    }

    /// The inverse of a word.
    pub fn inverse(w: &Word) -> Word {
        w.iter().rev().map(|&l| -l).collect()
    }

    /// The commutator `[a, b] = a⁻¹ b⁻¹ a b`.
    pub fn commutator(a: &Word, b: &Word) -> Word {
        let (ai, bi) = (inverse(a), inverse(b));
        concat(&[&ai, &bi, a, b])
    }

    /// Freely reduces a word by cancelling adjacent `g g⁻¹` pairs.
    pub fn reduce(w: &Word) -> Word {
        let mut out: Word = Vec::with_capacity(w.len());
        for &l in w {
            if out.last() == Some(&-l) {
                out.pop();
            } else {
                out.push(l);
            }
        }
        out
    }
}

/// A finitely presented group `⟨g₀..g_{n-1} | relators⟩`.
///
/// # Example
///
/// ```
/// use qec_group::{Presentation, word};
///
/// // The cyclic group Z/5: ⟨x | x⁵⟩.
/// let pres = Presentation::new(1, vec![word::pow(&word::gen(0), 5)]);
/// assert_eq!(pres.num_generators(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Presentation {
    num_generators: usize,
    relators: Vec<Word>,
}

impl Presentation {
    /// Creates a presentation with `num_generators` generators and the
    /// given relator words.
    ///
    /// # Panics
    ///
    /// Panics if a relator uses a letter outside
    /// `±1..=±num_generators` or contains a zero letter.
    pub fn new(num_generators: usize, relators: Vec<Word>) -> Self {
        for r in &relators {
            for &l in r {
                assert!(
                    l != 0 && l.unsigned_abs() as usize <= num_generators,
                    "relator letter {l} out of range for {num_generators} generators"
                );
            }
        }
        Presentation {
            num_generators,
            relators,
        }
    }

    /// Number of generators.
    pub fn num_generators(&self) -> usize {
        self.num_generators
    }

    /// The relator words.
    pub fn relators(&self) -> &[Word] {
        &self.relators
    }

    /// Adds a relator.
    ///
    /// # Panics
    ///
    /// Panics if the relator uses an out-of-range letter.
    pub fn add_relator(&mut self, relator: Word) {
        for &l in &relator {
            assert!(
                l != 0 && l.unsigned_abs() as usize <= self.num_generators,
                "relator letter {l} out of range"
            );
        }
        self.relators.push(relator);
    }
}

/// The von Dyck (orientation-preserving triangle) group
/// `Δ⁺(r, s, 2) = ⟨x, y | xʳ, yˢ, (xy)²⟩` with optional extra relators
/// picking out a finite quotient.
///
/// Generator 0 is `x` (face rotation, order `r`), generator 1 is `y`
/// (vertex rotation, order `s`).
///
/// # Panics
///
/// Panics if `r < 2` or `s < 2`.
pub fn von_dyck(r: usize, s: usize, extra_relators: &[Word]) -> Presentation {
    assert!(r >= 2 && s >= 2, "need r, s >= 2");
    let x = word::gen(0);
    let y = word::gen(1);
    let xy = word::concat(&[&x, &y]);
    let mut relators = vec![word::pow(&x, r), word::pow(&y, s), word::pow(&xy, 2)];
    relators.extend_from_slice(extra_relators);
    Presentation::new(2, relators)
}

/// The full triangle group
/// `[p, q] = ⟨a, b, c | a², b², c², (ab)ᵖ, (bc)^q, (ca)²⟩` with optional
/// extra relators picking out a finite quotient.
///
/// In the `{p,q}` tiling interpretation: `a` changes the vertex of a
/// flag, `b` the edge, `c` the face; faces are cosets of `⟨a, b⟩`,
/// vertices of `⟨b, c⟩`, edges of `⟨c, a⟩`.
///
/// # Panics
///
/// Panics if `p < 2` or `q < 2`.
pub fn triangle_group(p: usize, q: usize, extra_relators: &[Word]) -> Presentation {
    assert!(p >= 2 && q >= 2, "need p, q >= 2");
    let a = word::gen(0);
    let b = word::gen(1);
    let c = word::gen(2);
    let ab = word::concat(&[&a, &b]);
    let bc = word::concat(&[&b, &c]);
    let ca = word::concat(&[&c, &a]);
    let mut relators = vec![
        word::pow(&a, 2),
        word::pow(&b, 2),
        word::pow(&c, 2),
        word::pow(&ab, p),
        word::pow(&bc, q),
        word::pow(&ca, 2),
    ];
    relators.extend_from_slice(extra_relators);
    Presentation::new(3, relators)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_helpers() {
        let x = word::gen(0);
        let y = word::gen(1);
        assert_eq!(word::pow(&x, 3), vec![1, 1, 1]);
        assert_eq!(word::inverse(&word::concat(&[&x, &y])), vec![-2, -1]);
        assert_eq!(word::commutator(&x, &y), vec![-1, -2, 1, 2]);
        assert_eq!(word::reduce(&vec![1, -1, 2, 2, -2]), vec![2]);
        assert_eq!(word::inv_gen(1), vec![-2]);
    }

    #[test]
    fn von_dyck_relators() {
        let p = von_dyck(4, 5, &[]);
        assert_eq!(p.num_generators(), 2);
        assert_eq!(p.relators().len(), 3);
        assert_eq!(p.relators()[0], vec![1, 1, 1, 1]);
        assert_eq!(p.relators()[2], vec![1, 2, 1, 2]);
    }

    #[test]
    fn triangle_group_relators() {
        let p = triangle_group(3, 8, &[]);
        assert_eq!(p.num_generators(), 3);
        assert_eq!(p.relators().len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_letter_rejected() {
        Presentation::new(1, vec![vec![2]]);
    }
}
