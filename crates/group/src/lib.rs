//! Finitely presented groups for hyperbolic code construction.
//!
//! The Flag-Proxy Networks paper constructs hyperbolic surface and color
//! codes from `{r,s}` tilings of closed hyperbolic surfaces, generated
//! with the GAP computer-algebra system. This crate replaces GAP with a
//! from-scratch implementation of the same machinery:
//!
//! * [`Presentation`] — a finite group presentation `⟨g₁..gₙ | R⟩`;
//! * [`enumerate_cosets`] — Todd–Coxeter coset enumeration (HLT strategy
//!   with coincidence handling), producing a [`CosetTable`];
//! * [`von_dyck`] / [`triangle_group`] — the (orientation-preserving)
//!   von Dyck group `Δ⁺(r,s,2) = ⟨x,y | xʳ, yˢ, (xy)²⟩` and the full
//!   triangle group `[p,q] = ⟨a,b,c | a²,b²,c², (ab)ᵖ, (bc)^q, (ca)²⟩`,
//!   plus extra relators selecting finite quotients;
//! * [`Tiling`] — extraction of the `{r,s}` tiling (faces, vertices,
//!   edges and their incidences) from the regular action of a finite
//!   quotient on itself, and [`ColorTiling`] — its truncation into the
//!   trivalent 3-face-colorable lattices underlying hyperbolic color
//!   codes.
//!
//! # Example
//!
//! ```
//! use qec_group::{von_dyck, enumerate_cosets};
//!
//! // The icosahedral von Dyck group Δ⁺(3,5,2) ≅ A5 is already finite.
//! let pres = von_dyck(3, 5, &[]);
//! let table = enumerate_cosets(&pres, &[], 10_000).unwrap();
//! assert_eq!(table.num_cosets(), 60); // |A5| = 60
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod presentation;
mod tiling;
mod todd_coxeter;

pub use presentation::{triangle_group, von_dyck, word, Presentation, Word};
pub use tiling::{ColorTiling, PlaqColor, Tiling, TilingError};
pub use todd_coxeter::{enumerate_cosets, CosetTable, EnumerationError};
