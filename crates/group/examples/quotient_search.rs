//! Searches for finite von Dyck and full-triangle-group quotients that
//! yield clean hyperbolic tilings, printing candidates for the code
//! registry in `qec-code`.
//!
//! Run with: `cargo run -p qec-group --release --example quotient_search`

use qec_group::{enumerate_cosets, triangle_group, von_dyck, word, ColorTiling, Tiling, Word};

fn relator_name_and_word(kind: usize, k: usize) -> (String, Word) {
    let x = word::gen(0);
    let y = word::gen(1);
    let yi = word::inv_gen(1);
    match kind {
        0 => (
            format!("(xy^-1)^{k}"),
            word::pow(&word::concat(&[&x, &yi]), k),
        ),
        1 => (
            format!("[x,y]^{k}"),
            word::pow(&word::commutator(&x, &y), k),
        ),
        2 => (
            format!("(xxy)^{k}"),
            word::pow(&word::concat(&[&x, &x, &y]), k),
        ),
        3 => (
            format!("(xyy)^{k}"),
            word::pow(&word::concat(&[&x, &y, &y]), k),
        ),
        _ => unreachable!(),
    }
}

fn main() {
    let max = 250_000;
    println!("== von Dyck quotients (hyperbolic surface codes) ==");
    for (r, s) in [(4usize, 5usize), (4, 6), (5, 5), (5, 6)] {
        for kind in 0..4 {
            for k in 2..=12 {
                let (name, w) = relator_name_and_word(kind, k);
                let pres = von_dyck(r, s, std::slice::from_ref(&w));
                let Ok(table) = enumerate_cosets(&pres, &[], max) else {
                    continue;
                };
                let order = table.num_cosets();
                if order < r * s {
                    continue; // collapsed
                }
                match Tiling::from_von_dyck(&table, r, s) {
                    Ok(t) => {
                        let chi = t.euler_characteristic();
                        let n = t.num_edges();
                        let kk = 2 - chi;
                        println!("  {{{r},{s}}} + {name}: |G|={order} n={n} chi={chi} k~{kk}");
                    }
                    Err(e) => {
                        println!("  {{{r},{s}}} + {name}: |G|={order} DEGENERATE ({e})");
                    }
                }
            }
        }
    }

    println!("== full triangle group quotients (hyperbolic color codes) ==");
    // {r,s} color code = truncation of {p,q} = {s/2, 2r}.
    for (r, s) in [(4usize, 6usize), (4, 8), (4, 10), (5, 8)] {
        let (p, q) = (s / 2, 2 * r);
        let a = word::gen(0);
        let b = word::gen(1);
        let c = word::gen(2);
        let abc = word::concat(&[&a, &b, &c]);
        let abcb = word::concat(&[&a, &b, &c, &b]);
        for (base_name, base) in [("(abc)", abc), ("(abcb)", abcb)] {
            for k in 4..=24 {
                let w = word::pow(&base, k);
                let pres = triangle_group(p, q, std::slice::from_ref(&w));
                let Ok(table) = enumerate_cosets(&pres, &[], max) else {
                    continue;
                };
                let order = table.num_cosets();
                if order < 2 * q {
                    continue;
                }
                match ColorTiling::from_triangle_group(&table, p, q) {
                    Ok(ct) => {
                        let n = ct.num_corners;
                        let plq = ct.plaquettes.len();
                        println!(
                            "  {{{r},{s}}} [p={p},q={q}] + {base_name}^{k}: |G|={order} n={n} plaquettes={plq}"
                        );
                    }
                    Err(e) => {
                        println!(
                            "  {{{r},{s}}} [p={p},q={q}] + {base_name}^{k}: |G|={order} REJECT ({e})"
                        );
                    }
                }
            }
        }
    }
}
