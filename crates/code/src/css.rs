//! The central CSS code type.

use crate::logicals::{compute_logicals, Logicals};
use qec_group::PlaqColor;
use qec_math::{gf2, BitMatrix, BitVec};
use std::fmt;
use std::sync::OnceLock;

/// Error produced when constructing or deriving from a CSS code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// `H_X · H_Zᵀ ≠ 0`: some X check anticommutes with some Z check.
    NonCommutingChecks {
        /// Index of the offending X check.
        x_check: usize,
        /// Index of the offending Z check.
        z_check: usize,
    },
    /// The two parity-check matrices have different column counts.
    ColumnMismatch,
    /// Color metadata length does not match the number of plaquettes.
    BadColorMetadata,
    /// The underlying group/tiling construction failed.
    Construction(String),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::NonCommutingChecks { x_check, z_check } => {
                write!(f, "X check {x_check} anticommutes with Z check {z_check}")
            }
            CodeError::ColumnMismatch => write!(f, "H_X and H_Z have different qubit counts"),
            CodeError::BadColorMetadata => {
                write!(f, "color metadata does not match plaquette count")
            }
            CodeError::Construction(msg) => write!(f, "construction failed: {msg}"),
        }
    }
}

impl std::error::Error for CodeError {}

/// Which code family a [`CssCode`] belongs to; used to select layouts,
/// schedules and decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeFamily {
    /// Rotated planar surface code of odd distance `d`.
    PlanarSurface {
        /// Code distance.
        d: usize,
    },
    /// Toric surface code of distance `d` (no boundaries).
    ToricSurface {
        /// Code distance.
        d: usize,
    },
    /// Hyperbolic surface code from an `{r,s}` tiling.
    HyperbolicSurface {
        /// Face size.
        r: usize,
        /// Vertex degree.
        s: usize,
    },
    /// Hyperbolic color code with red `2r`-gons and green/blue `s`-gons.
    HyperbolicColor {
        /// Red plaquettes have `2r` corners.
        r: usize,
        /// Green/blue plaquettes have `s` corners.
        s: usize,
    },
    /// Toric 6.6.6 color code (flat geometry, no boundaries).
    ToricColor {
        /// Linear scale: `n = 6m²`.
        m: usize,
    },
    /// Anything else.
    Custom,
}

impl fmt::Display for CodeFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeFamily::PlanarSurface { d } => write!(f, "planar surface d={d}"),
            CodeFamily::ToricSurface { d } => write!(f, "toric surface d={d}"),
            CodeFamily::HyperbolicSurface { r, s } => write!(f, "hyperbolic surface {{{r},{s}}}"),
            CodeFamily::HyperbolicColor { r, s } => write!(f, "hyperbolic color {{{r},{s}}}"),
            CodeFamily::ToricColor { m } => write!(f, "toric color m={m}"),
            CodeFamily::Custom => write!(f, "custom"),
        }
    }
}

/// A CSS quantum error-correcting code.
///
/// Rows of `hx` are X-type stabilizer generators (X on their support;
/// they detect Z errors) and rows of `hz` are Z-type generators.
/// Construction validates the CSS commutation condition
/// `H_X · H_Zᵀ = 0`. Code parameters and logical operators are derived
/// lazily and cached.
///
/// # Example
///
/// ```
/// use qec_code::{CssCode, CodeFamily};
/// use qec_math::BitMatrix;
///
/// // The `[[4,2,2]]` code: one X check and one Z check on 4 qubits.
/// let hx = BitMatrix::from_rows_of_ones(1, 4, &[vec![0, 1, 2, 3]]);
/// let hz = hx.clone();
/// let code = CssCode::new("`[[4,2,2]]`", CodeFamily::Custom, hx, hz).unwrap();
/// assert_eq!(code.k(), 2);
/// ```
#[derive(Debug)]
pub struct CssCode {
    name: String,
    family: CodeFamily,
    hx: BitMatrix,
    hz: BitMatrix,
    check_colors: Option<Vec<PlaqColor>>,
    schedule_hints: Option<ScheduleHints>,
    k: usize,
    logicals: OnceLock<Logicals>,
}

/// Pre-computed CNOT orderings for codes with known fault-tolerant
/// schedules (the rotated planar surface code).
///
/// `x_orders[i]` / `z_orders[i]` list the data qubits of the i-th X/Z
/// check in the time order their CNOTs should execute; `usize::MAX`
/// entries are idle slots (boundary checks skip timesteps to stay
/// aligned with the bulk pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleHints {
    /// Per-X-check ordered supports.
    pub x_orders: Vec<Vec<usize>>,
    /// Per-Z-check ordered supports.
    pub z_orders: Vec<Vec<usize>>,
}

impl CssCode {
    /// Creates a CSS code from its two parity-check matrices.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ColumnMismatch`] if the matrices act on a
    /// different number of qubits, or
    /// [`CodeError::NonCommutingChecks`] if any X and Z check share an
    /// odd number of qubits.
    pub fn new(
        name: impl Into<String>,
        family: CodeFamily,
        hx: BitMatrix,
        hz: BitMatrix,
    ) -> Result<Self, CodeError> {
        if hx.cols() != hz.cols() {
            return Err(CodeError::ColumnMismatch);
        }
        for (i, x) in hx.iter_rows().enumerate() {
            for (j, z) in hz.iter_rows().enumerate() {
                if x.dot(z) {
                    return Err(CodeError::NonCommutingChecks {
                        x_check: i,
                        z_check: j,
                    });
                }
            }
        }
        let k = hx.cols() - gf2::rank(&hx) - gf2::rank(&hz);
        Ok(CssCode {
            name: name.into(),
            family,
            hx,
            hz,
            check_colors: None,
            schedule_hints: None,
            k,
            logicals: OnceLock::new(),
        })
    }

    /// Attaches plaquette colors (color codes only). The i-th color
    /// applies to both the i-th X check and the i-th Z check, which
    /// must have identical supports.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadColorMetadata`] if the length differs
    /// from the check count or X/Z supports are not aligned.
    pub fn with_check_colors(mut self, colors: Vec<PlaqColor>) -> Result<Self, CodeError> {
        if colors.len() != self.hx.rows() || self.hx.rows() != self.hz.rows() {
            return Err(CodeError::BadColorMetadata);
        }
        for i in 0..self.hx.rows() {
            if self.hx.row(i) != self.hz.row(i) {
                return Err(CodeError::BadColorMetadata);
            }
        }
        self.check_colors = Some(colors);
        Ok(self)
    }

    /// Attaches fault-tolerant CNOT-order hints (planar codes).
    pub fn with_schedule_hints(mut self, hints: ScheduleHints) -> Self {
        self.schedule_hints = Some(hints);
        self
    }

    /// Human-readable code name, e.g. `[[30,8,3,3]] {5,5}` (as text).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The code family.
    pub fn family(&self) -> &CodeFamily {
        &self.family
    }

    /// Number of data qubits.
    pub fn n(&self) -> usize {
        self.hx.cols()
    }

    /// Number of logical qubits `n - rank(H_X) - rank(H_Z)`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The X-type parity-check matrix.
    pub fn hx(&self) -> &BitMatrix {
        &self.hx
    }

    /// The Z-type parity-check matrix.
    pub fn hz(&self) -> &BitMatrix {
        &self.hz
    }

    /// Number of X checks (rows of `hx`, including dependent ones).
    pub fn num_x_checks(&self) -> usize {
        self.hx.rows()
    }

    /// Number of Z checks.
    pub fn num_z_checks(&self) -> usize {
        self.hz.rows()
    }

    /// Support of the i-th X check as qubit indices.
    pub fn x_support(&self, i: usize) -> Vec<usize> {
        self.hx.row(i).iter_ones().collect()
    }

    /// Support of the i-th Z check as qubit indices.
    pub fn z_support(&self, i: usize) -> Vec<usize> {
        self.hz.row(i).iter_ones().collect()
    }

    /// Plaquette colors, for color codes.
    pub fn check_colors(&self) -> Option<&[PlaqColor]> {
        self.check_colors.as_deref()
    }

    /// Fault-tolerant CNOT-order hints, if the family has them.
    pub fn schedule_hints(&self) -> Option<&ScheduleHints> {
        self.schedule_hints.as_ref()
    }

    /// Maximum check weight `δ_max` over both check types.
    pub fn max_check_weight(&self) -> usize {
        self.hx
            .iter_rows()
            .chain(self.hz.iter_rows())
            .map(BitVec::weight)
            .max()
            .unwrap_or(0)
    }

    /// Maximum X-check weight `δ_X`.
    pub fn max_x_weight(&self) -> usize {
        self.hx.iter_rows().map(BitVec::weight).max().unwrap_or(0)
    }

    /// Maximum Z-check weight `δ_Z`.
    pub fn max_z_weight(&self) -> usize {
        self.hz.iter_rows().map(BitVec::weight).max().unwrap_or(0)
    }

    /// A symplectically paired basis of logical operators (computed on
    /// first use and cached).
    pub fn logicals(&self) -> &Logicals {
        self.logicals
            .get_or_init(|| compute_logicals(&self.hx, &self.hz))
    }

    /// The ideal rate `k / n`.
    pub fn ideal_rate(&self) -> f64 {
        self.k as f64 / self.n() as f64
    }

    /// Degree of each data qubit in the Tanner graph (number of checks
    /// acting on it, X and Z combined).
    pub fn data_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n()];
        for row in self.hx.iter_rows().chain(self.hz.iter_rows()) {
            for q in row.iter_ones() {
                deg[q] += 1;
            }
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steane() -> CssCode {
        let rows = vec![vec![0, 1, 2, 3], vec![1, 2, 4, 5], vec![2, 3, 5, 6]];
        let h = BitMatrix::from_rows_of_ones(3, 7, &rows);
        CssCode::new("steane", CodeFamily::Custom, h.clone(), h).unwrap()
    }

    #[test]
    fn steane_parameters() {
        let code = steane();
        assert_eq!(code.n(), 7);
        assert_eq!(code.k(), 1);
        assert_eq!(code.max_check_weight(), 4);
        assert_eq!(code.num_x_checks(), 3);
        assert_eq!(code.x_support(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn steane_logicals_pair_correctly() {
        let code = steane();
        let logicals = code.logicals();
        assert_eq!(logicals.num_pairs(), 1);
        logicals.verify(&code).unwrap();
    }

    #[test]
    fn non_commuting_rejected() {
        let hx = BitMatrix::from_rows_of_ones(1, 3, &[vec![0, 1]]);
        let hz = BitMatrix::from_rows_of_ones(1, 3, &[vec![1, 2]]);
        let err = CssCode::new("bad", CodeFamily::Custom, hx, hz).unwrap_err();
        assert_eq!(
            err,
            CodeError::NonCommutingChecks {
                x_check: 0,
                z_check: 0
            }
        );
    }

    #[test]
    fn column_mismatch_rejected() {
        let hx = BitMatrix::zeros(1, 3);
        let hz = BitMatrix::zeros(1, 4);
        assert_eq!(
            CssCode::new("bad", CodeFamily::Custom, hx, hz).unwrap_err(),
            CodeError::ColumnMismatch
        );
    }

    #[test]
    fn color_metadata_requires_aligned_supports() {
        let code = steane();
        let colored = CssCode::new(
            "steane",
            CodeFamily::Custom,
            code.hx().clone(),
            code.hz().clone(),
        )
        .unwrap()
        .with_check_colors(vec![PlaqColor::Red, PlaqColor::Green, PlaqColor::Blue])
        .unwrap();
        assert_eq!(colored.check_colors().unwrap().len(), 3);

        let misaligned = CssCode::new(
            "bad",
            CodeFamily::Custom,
            BitMatrix::from_rows_of_ones(1, 4, &[vec![0, 1, 2, 3]]),
            BitMatrix::from_rows_of_ones(1, 4, &[vec![0, 1, 2, 3]]),
        )
        .unwrap()
        .with_check_colors(vec![PlaqColor::Red, PlaqColor::Green]);
        assert!(misaligned.is_err());
    }

    #[test]
    fn shor_code_has_k_one() {
        // Shor's [[9,1,3]]: Z checks pair qubits within triples, X checks
        // are weight-6 across triples.
        let hz = BitMatrix::from_rows_of_ones(
            6,
            9,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![3, 4],
                vec![4, 5],
                vec![6, 7],
                vec![7, 8],
            ],
        );
        let hx =
            BitMatrix::from_rows_of_ones(2, 9, &[vec![0, 1, 2, 3, 4, 5], vec![3, 4, 5, 6, 7, 8]]);
        let code = CssCode::new("shor", CodeFamily::Custom, hx, hz).unwrap();
        assert_eq!(code.k(), 1);
        code.logicals().verify(&code).unwrap();
    }
}
