//! Logical-operator extraction for CSS codes.

use crate::{CodeError, CssCode};
use qec_math::{gf2, BitMatrix};

/// A symplectically paired basis of logical operators.
///
/// Row `i` of [`Logicals::xs`] anticommutes with row `i` of
/// [`Logicals::zs`] and commutes with every other row (and with all
/// stabilizers): `L_X · L_Zᵀ = I` over GF(2).
#[derive(Debug, Clone)]
pub struct Logicals {
    xs: BitMatrix,
    zs: BitMatrix,
}

impl Logicals {
    /// The X-type logical operators, one per logical qubit.
    pub fn xs(&self) -> &BitMatrix {
        &self.xs
    }

    /// The Z-type logical operators, one per logical qubit.
    pub fn zs(&self) -> &BitMatrix {
        &self.zs
    }

    /// Number of logical pairs (the code's `k`).
    pub fn num_pairs(&self) -> usize {
        self.xs.rows()
    }

    /// Checks all defining properties against `code`:
    /// commutation with stabilizers, symplectic pairing, and
    /// independence from the stabilizer group.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::Construction`] describing the first
    /// violated property.
    pub fn verify(&self, code: &CssCode) -> Result<(), CodeError> {
        let k = code.k();
        if self.xs.rows() != k || self.zs.rows() != k {
            return Err(CodeError::Construction(format!(
                "expected {k} logical pairs, have {}x/{}z",
                self.xs.rows(),
                self.zs.rows()
            )));
        }
        // X logicals commute with Z checks; Z logicals with X checks.
        for (i, lx) in self.xs.iter_rows().enumerate() {
            for (j, z) in code.hz().iter_rows().enumerate() {
                if lx.dot(z) {
                    return Err(CodeError::Construction(format!(
                        "logical X {i} anticommutes with Z check {j}"
                    )));
                }
            }
        }
        for (i, lz) in self.zs.iter_rows().enumerate() {
            for (j, x) in code.hx().iter_rows().enumerate() {
                if lz.dot(x) {
                    return Err(CodeError::Construction(format!(
                        "logical Z {i} anticommutes with X check {j}"
                    )));
                }
            }
        }
        // Symplectic pairing L_X · L_Zᵀ = I.
        for (i, lx) in self.xs.iter_rows().enumerate() {
            for (j, lz) in self.zs.iter_rows().enumerate() {
                let expect = i == j;
                if lx.dot(lz) != expect {
                    return Err(CodeError::Construction(format!(
                        "pairing violation between X {i} and Z {j}"
                    )));
                }
            }
        }
        // Independence from stabilizers: Lx not in rowspace(Hx).
        for (i, lx) in self.xs.iter_rows().enumerate() {
            if gf2::in_row_space(code.hx(), lx) {
                return Err(CodeError::Construction(format!(
                    "logical X {i} is a stabilizer"
                )));
            }
        }
        for (i, lz) in self.zs.iter_rows().enumerate() {
            if gf2::in_row_space(code.hz(), lz) {
                return Err(CodeError::Construction(format!(
                    "logical Z {i} is a stabilizer"
                )));
            }
        }
        Ok(())
    }
}

/// Computes a symplectically paired logical basis for the CSS code
/// `(hx, hz)`.
///
/// X logicals live in `ker(H_Z) / rowspace(H_X)`, Z logicals in
/// `ker(H_X) / rowspace(H_Z)`; the Z basis is then transformed by the
/// inverse of the Gram matrix so that `L_X · L_Zᵀ = I`.
///
/// # Panics
///
/// Panics if the inputs do not define a valid CSS code (callers go
/// through [`CssCode`], which validates commutation first).
pub(crate) fn compute_logicals(hx: &BitMatrix, hz: &BitMatrix) -> Logicals {
    let n = hx.cols();
    let quotient_basis = |kernel_of: &BitMatrix, modulo: &BitMatrix| -> BitMatrix {
        let ns = gf2::nullspace(kernel_of);
        // Keep nullspace vectors independent modulo rowspace(modulo):
        // stack modulo's rows first, then greedily keep nullspace rows
        // that increase the rank.
        let mut acc = modulo.clone();
        let base_rank = gf2::rank(&acc);
        let mut out = BitMatrix::zeros(0, n);
        let mut rank = base_rank;
        for v in ns.iter_rows() {
            acc.push_row(v.clone());
            let new_rank = gf2::rank(&acc);
            if new_rank > rank {
                rank = new_rank;
                out.push_row(v.clone());
            }
        }
        out
    };
    let lx = quotient_basis(hz, hx);
    let lz = quotient_basis(hx, hz);
    let k = lx.rows();
    assert_eq!(k, lz.rows(), "X/Z logical counts must agree");
    if k == 0 {
        return Logicals { xs: lx, zs: lz };
    }
    // Gram matrix M = Lx · Lzᵀ is invertible by symplectic
    // non-degeneracy; replace Lz with (Mᵀ)⁻¹ · Lz so Lx · Lz'ᵀ = I.
    let m = lx.mul(&lz.transposed());
    let minv_t = gf2::invert(&m.transposed()).expect("symplectic Gram matrix must be invertible");
    let lz_paired = minv_t.mul(&lz);
    Logicals {
        xs: lx,
        zs: lz_paired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodeFamily;

    #[test]
    fn toric_like_code_logicals() {
        // [[4,2,2]]: single X and Z check of weight 4; k=2.
        let h = BitMatrix::from_rows_of_ones(1, 4, &[vec![0, 1, 2, 3]]);
        let code = CssCode::new("422", CodeFamily::Custom, h.clone(), h).unwrap();
        let l = code.logicals();
        assert_eq!(l.num_pairs(), 2);
        l.verify(&code).unwrap();
    }

    #[test]
    fn zero_k_code_has_no_logicals() {
        // [[2,0,..]]: X check {0,1} and Z check {0,1}.
        let hx = BitMatrix::from_rows_of_ones(1, 2, &[vec![0, 1]]);
        let hz = BitMatrix::from_rows_of_ones(1, 2, &[vec![0, 1]]);
        let code = CssCode::new("k0", CodeFamily::Custom, hx, hz).unwrap();
        assert_eq!(code.k(), 0);
        assert_eq!(code.logicals().num_pairs(), 0);
    }
}
