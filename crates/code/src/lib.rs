//! Quantum CSS codes for the Flag-Proxy Networks reproduction.
//!
//! This crate builds every code family evaluated in the paper:
//!
//! * [`CssCode`] — the central type: a pair of GF(2) parity-check
//!   matrices `(H_X, H_Z)` with `H_X · H_Zᵀ = 0`, plus metadata
//!   (family, plaquette colors for color codes) and derived data
//!   (logical-operator bases, code parameters).
//! * [`planar`] — the rotated planar surface code `[[d², 1, d]]`
//!   with the fault-tolerant CNOT ordering of Tomita–Svore.
//! * [`hyperbolic`] — hyperbolic surface codes (`{4,5}`, `{4,6}`,
//!   `{5,5}`, `{5,6}`), hyperbolic color codes (`{4,6}`, `{4,8}`,
//!   `{4,10}`, `{5,8}`), toric surface codes, and toric 6.6.6 color
//!   codes, all generated from triangle-group quotients via
//!   Todd–Coxeter enumeration (the paper used GAP).
//! * [`distance`] — randomized information-set-decoding estimates of
//!   code distance (the paper used brute-force search in Stim).
//!
//! # Example
//!
//! ```
//! use qec_code::planar::rotated_surface_code;
//!
//! let code = rotated_surface_code(3);
//! assert_eq!(code.n(), 9);
//! assert_eq!(code.k(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod css;
pub mod distance;
pub mod hyperbolic;
pub mod io;
mod logicals;
pub mod planar;

pub use css::{CodeError, CodeFamily, CssCode, ScheduleHints};
pub use logicals::Logicals;
// Plaquette colors are shared vocabulary between tilings and decoders.
pub use qec_group::{ColorTiling, PlaqColor, Tiling};
