//! The rotated planar surface code.
//!
//! The `[[d², 1, d]]` rotated surface code is the paper's baseline: it
//! requires degree-4 connectivity, has a fault-tolerant syndrome
//! extraction schedule obtained purely by CNOT ordering
//! (Tomita–Svore), and decodes with plain MWPM.

use crate::css::{CssCode, ScheduleHints};
use crate::CodeFamily;
use qec_math::BitMatrix;

/// Idle slot marker in schedule-hint orders (boundary checks keep the
/// 4-step bulk pattern and skip the missing corners).
pub const IDLE: usize = usize::MAX;

/// Builds the rotated planar surface code of odd distance `d`.
///
/// Data qubits live on a `d × d` grid (qubit `(r, c)` has index
/// `r*d + c`). Bulk plaquettes are weight-4 with X/Z types in a
/// checkerboard; weight-2 X checks sit on the top/bottom boundary and
/// weight-2 Z checks on the left/right boundary. The attached
/// [`ScheduleHints`] give the fault-tolerant CNOT ordering
/// (X checks: NW, NE, SW, SE — horizontal X hooks; Z checks: NW, SW,
/// NE, SE — vertical Z hooks), so two-qubit hook errors lie along the
/// boundary they connect and never shortcut a logical chain.
///
/// # Panics
///
/// Panics if `d` is even or `d < 3`.
///
/// # Example
///
/// ```
/// use qec_code::planar::rotated_surface_code;
///
/// let code = rotated_surface_code(5);
/// assert_eq!(code.n(), 25);
/// assert_eq!(code.k(), 1);
/// assert_eq!(code.num_x_checks() + code.num_z_checks(), 24);
/// ```
pub fn rotated_surface_code(d: usize) -> CssCode {
    assert!(d >= 3 && d % 2 == 1, "d must be odd and >= 3");
    let data = |r: usize, c: usize| r * d + c;
    let mut x_rows: Vec<Vec<usize>> = Vec::new();
    let mut z_rows: Vec<Vec<usize>> = Vec::new();
    let mut x_orders: Vec<Vec<usize>> = Vec::new();
    let mut z_orders: Vec<Vec<usize>> = Vec::new();
    for i in 0..=d {
        for j in 0..=d {
            // Corners of plaquette (i, j), clipped to the grid:
            let corner = |a: isize, b: isize| -> usize {
                if a >= 0 && b >= 0 && (a as usize) < d && (b as usize) < d {
                    data(a as usize, b as usize)
                } else {
                    IDLE
                }
            };
            let (ii, jj) = (i as isize, j as isize);
            let nw = corner(ii - 1, jj - 1);
            let ne = corner(ii - 1, jj);
            let sw = corner(ii, jj - 1);
            let se = corner(ii, jj);
            let support: Vec<usize> = [nw, ne, sw, se]
                .into_iter()
                .filter(|&q| q != IDLE)
                .collect();
            let is_x = (i + j) % 2 == 1;
            let include = match support.len() {
                4 => true,
                2 if is_x => i == 0 || i == d,
                2 => j == 0 || j == d,
                _ => false,
            };
            if !include {
                continue;
            }
            if is_x {
                x_rows.push(support);
                x_orders.push(vec![nw, ne, sw, se]);
            } else {
                z_rows.push(support);
                z_orders.push(vec![nw, sw, ne, se]);
            }
        }
    }
    let hx = BitMatrix::from_rows_of_ones(x_rows.len(), d * d, &x_rows);
    let hz = BitMatrix::from_rows_of_ones(z_rows.len(), d * d, &z_rows);
    CssCode::new(
        format!("[[{},1,{d}]] planar surface", d * d),
        CodeFamily::PlanarSurface { d },
        hx,
        hz,
    )
    .expect("rotated surface code construction is always CSS-valid")
    .with_schedule_hints(ScheduleHints { x_orders, z_orders })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::estimate_distances;

    #[test]
    fn parameters_for_small_distances() {
        for d in [3usize, 5, 7] {
            let code = rotated_surface_code(d);
            assert_eq!(code.n(), d * d);
            assert_eq!(code.k(), 1, "d={d}");
            assert_eq!(code.num_x_checks() + code.num_z_checks(), d * d - 1);
            assert_eq!(code.max_check_weight(), 4);
            code.logicals().verify(&code).unwrap();
        }
    }

    #[test]
    fn distance_matches_d() {
        for d in [3usize, 5] {
            let code = rotated_surface_code(d);
            let est = estimate_distances(code.hx(), code.hz(), 30, 42);
            assert_eq!(est.dx, d, "dx for d={d}");
            assert_eq!(est.dz, d, "dz for d={d}");
        }
    }

    #[test]
    fn boundary_checks_have_weight_two() {
        let code = rotated_surface_code(3);
        let w2_x = (0..code.num_x_checks())
            .filter(|&i| code.x_support(i).len() == 2)
            .count();
        let w2_z = (0..code.num_z_checks())
            .filter(|&i| code.z_support(i).len() == 2)
            .count();
        assert_eq!(w2_x, 2);
        assert_eq!(w2_z, 2);
    }

    #[test]
    fn schedule_hints_are_valid() {
        let code = rotated_surface_code(5);
        let hints = code.schedule_hints().unwrap();
        assert_eq!(hints.x_orders.len(), code.num_x_checks());
        assert_eq!(hints.z_orders.len(), code.num_z_checks());
        // Each order contains exactly the check's support (plus idles).
        for (i, order) in hints.x_orders.iter().enumerate() {
            let mut from_order: Vec<usize> = order.iter().copied().filter(|&q| q != IDLE).collect();
            from_order.sort_unstable();
            assert_eq!(from_order, code.x_support(i));
        }
        // Uniqueness: no data qubit is touched twice in one timestep.
        for t in 0..4 {
            let mut seen = std::collections::HashSet::new();
            for order in hints.x_orders.iter().chain(hints.z_orders.iter()) {
                if order[t] != IDLE {
                    assert!(seen.insert(order[t]), "qubit reused at step {t}");
                }
            }
        }
    }
}
