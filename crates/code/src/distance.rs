//! Code-distance estimation by randomized information-set decoding.
//!
//! The paper computes hyperbolic code distances by brute-force search in
//! Stim. We use the standard randomized estimator instead: repeatedly
//! row-reduce the logical-candidate space under a random column
//! permutation and record the lightest vector found that is a logical
//! operator (in the kernel of one check matrix but outside the row space
//! of the other). The result is an upper bound that converges to the
//! true distance rapidly for the small distances (≤ 12) relevant here;
//! unit tests pin it to known exact values on codes where the distance
//! is known.

use qec_math::rng::{Rng, Xoshiro256StarStar};
use qec_math::{gf2, BitMatrix, BitVec};

/// Distance estimates for a CSS code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceEstimate {
    /// Upper bound on `d_X`: minimum weight of an X-type logical.
    pub dx: usize,
    /// Upper bound on `d_Z`: minimum weight of a Z-type logical.
    pub dz: usize,
}

/// Estimates the minimum weight of a vector in `ker(stab_dual)` that is
/// **not** in the row space of `stab_same`.
///
/// For `d_X` pass `stab_dual = H_Z`, `stab_same = H_X` (X-type
/// operators commute with Z checks). Runs `iterations` randomized
/// rounds; more iterations tighten the bound.
///
/// Returns `usize::MAX` when the code has no logical operators (k = 0).
pub fn min_logical_weight(
    stab_dual: &BitMatrix,
    stab_same: &BitMatrix,
    iterations: usize,
    rng: &mut impl Rng,
) -> usize {
    let n = stab_dual.cols();
    let kernel = gf2::nullspace(stab_dual);
    if kernel.rows() == 0 {
        return usize::MAX;
    }
    // Pre-reduce stab_same for fast membership tests.
    let same_red = gf2::rref(stab_same);
    let is_logical = |v: &BitVec| -> bool {
        // Reduce v against the rref of stab_same; nonzero residue means
        // v is not a stabilizer (it is in the kernel by construction).
        let mut r = v.clone();
        for (row, &p) in same_red.pivots.iter().enumerate() {
            if r.get(p) {
                r.xor_assign(same_red.matrix.row(row));
            }
        }
        !r.is_zero()
    };

    let mut best = usize::MAX;
    // Round 0: the un-permuted basis itself plus row pairs.
    let consider = |v: &BitVec, best: &mut usize| {
        let w = v.weight();
        if w < *best && is_logical(v) {
            *best = w;
        }
    };
    let scan_basis = |basis: &BitMatrix, best: &mut usize| {
        let rows = basis.rows();
        for i in 0..rows {
            consider(basis.row(i), best);
        }
        // Pairs give a noticeably better estimate at modest cost; cap
        // the quadratic work on large codes.
        if rows <= 220 {
            for i in 0..rows {
                for j in (i + 1)..rows {
                    let v = basis.row(i) ^ basis.row(j);
                    consider(&v, best);
                }
            }
        }
    };
    scan_basis(&kernel, &mut best);

    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..iterations {
        rng.shuffle(&mut perm);
        // Permute columns, reduce, un-permute.
        let mut permuted = BitMatrix::zeros(kernel.rows(), n);
        for (r, row) in kernel.iter_rows().enumerate() {
            for c in row.iter_ones() {
                permuted.set(r, perm[c], true);
            }
        }
        let red = gf2::rref(&permuted);
        let mut unpermuted = BitMatrix::zeros(0, n);
        let mut inv = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        for row in red.matrix.iter_rows().take(red.rank()) {
            let back = BitVec::from_ones(n, row.iter_ones().map(|c| inv[c]));
            unpermuted.push_row(back);
        }
        scan_basis(&unpermuted, &mut best);
    }
    best
}

/// Estimates `(d_X, d_Z)` for the CSS code `(hx, hz)`.
pub fn estimate_distances(
    hx: &BitMatrix,
    hz: &BitMatrix,
    iterations: usize,
    seed: u64,
) -> DistanceEstimate {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let dx = min_logical_weight(hz, hx, iterations, &mut rng);
    let dz = min_logical_weight(hx, hz, iterations, &mut rng);
    DistanceEstimate { dx, dz }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steane_distance_is_three() {
        let rows = vec![vec![0, 1, 2, 3], vec![1, 2, 4, 5], vec![2, 3, 5, 6]];
        let h = BitMatrix::from_rows_of_ones(3, 7, &rows);
        let d = estimate_distances(&h, &h, 20, 1);
        assert_eq!(d.dx, 3);
        assert_eq!(d.dz, 3);
    }

    #[test]
    fn shor_distance_is_three_asymmetric_weights() {
        let hz = BitMatrix::from_rows_of_ones(
            6,
            9,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![3, 4],
                vec![4, 5],
                vec![6, 7],
                vec![7, 8],
            ],
        );
        let hx =
            BitMatrix::from_rows_of_ones(2, 9, &[vec![0, 1, 2, 3, 4, 5], vec![3, 4, 5, 6, 7, 8]]);
        let d = estimate_distances(&hx, &hz, 30, 2);
        assert_eq!(d.dx, 3); // X logical: X X X on a row
        assert_eq!(d.dz, 3); // Z logical: Z on one qubit per block
    }

    #[test]
    fn repetition_code_distance() {
        // Classical repetition as quantum phase-flip code: dz = 1, dx = n.
        let hz = BitMatrix::from_rows_of_ones(2, 3, &[vec![0, 1], vec![1, 2]]);
        let hx = BitMatrix::zeros(0, 3);
        let d = estimate_distances(&hx, &hz, 10, 3);
        assert_eq!(d.dx, 3);
        assert_eq!(d.dz, 1);
    }

    #[test]
    fn zero_logical_code() {
        let h = BitMatrix::from_rows_of_ones(1, 2, &[vec![0, 1]]);
        let d = estimate_distances(&h, &h, 5, 4);
        assert_eq!(d.dx, usize::MAX);
        assert_eq!(d.dz, usize::MAX);
    }
}
