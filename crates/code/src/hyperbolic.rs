//! Hyperbolic surface and color codes (and toric relatives) from
//! triangle-group quotients.
//!
//! The paper generates its codes with GAP; here each code is specified
//! by a pair `{r,s}` plus extra relators that select a finite quotient
//! of the relevant triangle group (found by an offline relator search,
//! see `crates/group/examples/quotient_search.rs`). The registries
//! below list every code used in the experiments together with its
//! verified size.

use crate::css::{CodeError, CodeFamily, CssCode};
use qec_group::{enumerate_cosets, triangle_group, von_dyck, word, ColorTiling, Tiling, Word};
use qec_math::BitMatrix;

/// An extra relator: `base` word raised to `power`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtraRelator {
    /// Base word (letters `±(i+1)`).
    pub base: &'static [i32],
    /// Exponent.
    pub power: usize,
}

impl ExtraRelator {
    fn to_word(self) -> Word {
        word::pow(&self.base.to_vec(), self.power)
    }
}

/// Specification of one hyperbolic code instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HyperbolicSpec {
    /// Face size (surface) / half the red plaquette size (color).
    pub r: usize,
    /// Vertex degree (surface) / green-blue plaquette size (color).
    pub s: usize,
    /// Extra relators defining the finite quotient.
    pub extra: &'static [ExtraRelator],
    /// Expected number of data qubits (validated at build time).
    pub expected_n: usize,
    /// Todd–Coxeter coset budget.
    pub coset_limit: usize,
}

const XYINV: &[i32] = &[1, -2];
const COMM: &[i32] = &[-1, -2, 1, 2];
const XXXY: &[i32] = &[1, 1, 1, 2];
const XYIYI: &[i32] = &[1, -2, -2];
const XXYIYI: &[i32] = &[1, 1, -2, -2];
const ABC: &[i32] = &[1, 2, 3];

macro_rules! rel {
    ($base:ident ^ $pow:literal) => {
        ExtraRelator {
            base: $base,
            power: $pow,
        }
    };
}

/// Registry of hyperbolic **surface** codes, grouped by subfamily,
/// smallest first (Tables IV of the paper; sizes are the quotients our
/// relator search discovered — same subfamilies, comparable `n`, `k`).
pub const SURFACE_REGISTRY: &[HyperbolicSpec] = &[
    // {4,5}
    HyperbolicSpec {
        r: 4,
        s: 5,
        extra: &[rel!(COMM ^ 3)],
        expected_n: 60,
        coset_limit: 50_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 5,
        extra: &[rel!(XYINV ^ 4)],
        expected_n: 80,
        coset_limit: 50_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 5,
        extra: &[rel!(XYINV ^ 5)],
        expected_n: 180,
        coset_limit: 80_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 5,
        extra: &[rel!(COMM ^ 4)],
        expected_n: 360,
        coset_limit: 120_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 5,
        extra: &[rel!(COMM ^ 5), rel!(XYINV ^ 8)],
        expected_n: 2560,
        coset_limit: 400_000,
    },
    // {4,6}
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(XYINV ^ 2)],
        expected_n: 12,
        coset_limit: 20_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(COMM ^ 2)],
        expected_n: 36,
        coset_limit: 30_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(XXXY ^ 3)],
        expected_n: 60,
        coset_limit: 50_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(COMM ^ 3), rel!(XYINV ^ 4)],
        expected_n: 96,
        coset_limit: 60_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(XYIYI ^ 3)],
        expected_n: 168,
        coset_limit: 80_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(COMM ^ 4), rel!(XYINV ^ 6)],
        expected_n: 576,
        coset_limit: 200_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(COMM ^ 3), rel!(XYINV ^ 8)],
        expected_n: 768,
        coset_limit: 250_000,
    },
    // {5,5}
    HyperbolicSpec {
        r: 5,
        s: 5,
        extra: &[rel!(XYINV ^ 3)],
        expected_n: 30,
        coset_limit: 20_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 5,
        extra: &[rel!(COMM ^ 2)],
        expected_n: 40,
        coset_limit: 30_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 5,
        extra: &[rel!(XYINV ^ 4)],
        expected_n: 180,
        coset_limit: 80_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 5,
        extra: &[rel!(XXYIYI ^ 3)],
        expected_n: 330,
        coset_limit: 120_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 5,
        extra: &[rel!(COMM ^ 3), rel!(XYINV ^ 6)],
        expected_n: 480,
        coset_limit: 200_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 5,
        extra: &[rel!(COMM ^ 4), rel!(XYINV ^ 5)],
        expected_n: 1280,
        coset_limit: 400_000,
    },
    // {5,6}
    HyperbolicSpec {
        r: 5,
        s: 6,
        extra: &[rel!(COMM ^ 2)],
        expected_n: 60,
        coset_limit: 50_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 6,
        extra: &[rel!(COMM ^ 3), rel!(XYINV ^ 5)],
        expected_n: 330,
        coset_limit: 150_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 6,
        extra: &[rel!(COMM ^ 4), rel!(XYINV ^ 4)],
        expected_n: 960,
        coset_limit: 300_000,
    },
];

/// Registry of hyperbolic **color** codes (Table V of the paper).
///
/// A `{r,s}` color code (red `2r`-gons, green/blue `s`-gons) is the
/// truncation of the `{s/2, 2r}` tiling, built from a full triangle
/// group `[s/2, 2r]` quotient.
pub const COLOR_REGISTRY: &[HyperbolicSpec] = &[
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(ABC ^ 6)],
        expected_n: 96,
        coset_limit: 50_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(ABC ^ 8)],
        expected_n: 336,
        coset_limit: 100_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 6,
        extra: &[rel!(ABC ^ 10)],
        expected_n: 2160,
        coset_limit: 400_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 8,
        extra: &[rel!(ABC ^ 4)],
        expected_n: 128,
        coset_limit: 60_000,
    },
    HyperbolicSpec {
        r: 4,
        s: 10,
        extra: &[rel!(ABC ^ 4)],
        expected_n: 720,
        coset_limit: 200_000,
    },
    HyperbolicSpec {
        r: 5,
        s: 8,
        extra: &[rel!(ABC ^ 4)],
        expected_n: 200,
        coset_limit: 80_000,
    },
];

fn enumerate(
    pres: &qec_group::Presentation,
    limit: usize,
) -> Result<qec_group::CosetTable, CodeError> {
    enumerate_cosets(pres, &[], limit).map_err(|e| CodeError::Construction(e.to_string()))
}

/// Builds a hyperbolic surface code from its registry spec.
///
/// Data qubits are the tiling's edges; X checks its faces; Z checks its
/// vertices (Fig. 2(b) of the paper).
///
/// # Errors
///
/// Returns [`CodeError::Construction`] if enumeration fails, the tiling
/// is degenerate, or the qubit count does not match `expected_n`.
pub fn hyperbolic_surface_code(spec: &HyperbolicSpec) -> Result<CssCode, CodeError> {
    let extra: Vec<Word> = spec.extra.iter().map(|e| e.to_word()).collect();
    let pres = von_dyck(spec.r, spec.s, &extra);
    let table = enumerate(&pres, spec.coset_limit)?;
    let tiling = Tiling::from_von_dyck(&table, spec.r, spec.s)
        .map_err(|e| CodeError::Construction(e.to_string()))?;
    surface_code_from_tiling(&tiling, spec)
}

fn surface_code_from_tiling(tiling: &Tiling, spec: &HyperbolicSpec) -> Result<CssCode, CodeError> {
    let n = tiling.num_edges();
    if n != spec.expected_n {
        return Err(CodeError::Construction(format!(
            "expected n={} but tiling has {n} edges",
            spec.expected_n
        )));
    }
    let hx = BitMatrix::from_rows_of_ones(tiling.num_faces(), n, &tiling.face_edges);
    let hz = BitMatrix::from_rows_of_ones(tiling.num_vertices(), n, &tiling.vertex_edges);
    let mut code = CssCode::new(
        String::new(),
        CodeFamily::HyperbolicSurface {
            r: spec.r,
            s: spec.s,
        },
        hx,
        hz,
    )?;
    code = rename_with_params(code, &format!("{{{},{}}} h-surface", spec.r, spec.s));
    Ok(code)
}

/// Builds a hyperbolic color code from its registry spec.
///
/// Each plaquette of the truncated tiling contributes an X and a Z
/// check of identical support; plaquette colors are attached for the
/// restriction decoder.
///
/// # Errors
///
/// Returns [`CodeError::Construction`] on enumeration/tiling failure or
/// a size mismatch.
pub fn hyperbolic_color_code(spec: &HyperbolicSpec) -> Result<CssCode, CodeError> {
    let extra: Vec<Word> = spec.extra.iter().map(|e| e.to_word()).collect();
    let (p, q) = (spec.s / 2, 2 * spec.r);
    let pres = triangle_group(p, q, &extra);
    let table = enumerate(&pres, spec.coset_limit)?;
    let tiling = ColorTiling::from_triangle_group(&table, p, q)
        .map_err(|e| CodeError::Construction(e.to_string()))?;
    color_code_from_tiling(
        &tiling,
        spec.expected_n,
        CodeFamily::HyperbolicColor {
            r: spec.r,
            s: spec.s,
        },
        &format!("{{{},{}}} h-color", spec.r, spec.s),
    )
}

fn color_code_from_tiling(
    tiling: &ColorTiling,
    expected_n: usize,
    family: CodeFamily,
    label: &str,
) -> Result<CssCode, CodeError> {
    let n = tiling.num_corners;
    if n != expected_n {
        return Err(CodeError::Construction(format!(
            "expected n={expected_n} but truncated tiling has {n} corners"
        )));
    }
    let rows: Vec<Vec<usize>> = tiling.plaquettes.iter().map(|(_, s)| s.clone()).collect();
    let colors = tiling.plaquettes.iter().map(|(c, _)| *c).collect();
    let h = BitMatrix::from_rows_of_ones(rows.len(), n, &rows);
    let code = CssCode::new(String::new(), family, h.clone(), h)?.with_check_colors(colors)?;
    Ok(rename_with_params(code, label))
}

/// Builds the toric surface code of distance `d` (`n = 2d²`, `k = 2`)
/// from the Euclidean von Dyck group `Δ⁺(4,4,2)` with relator
/// `(xy⁻¹)^d`. Used as a boundary-free validation code.
///
/// # Errors
///
/// Returns [`CodeError::Construction`] if the quotient is degenerate.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn toric_surface_code(d: usize) -> Result<CssCode, CodeError> {
    assert!(d >= 2, "toric code needs d >= 2");
    let rel = word::pow(&vec![1, -2], d);
    let pres = von_dyck(4, 4, &[rel]);
    let table = enumerate(&pres, 100 * d * d + 10_000)?;
    let tiling =
        Tiling::from_von_dyck(&table, 4, 4).map_err(|e| CodeError::Construction(e.to_string()))?;
    let n = tiling.num_edges();
    if n != 2 * d * d {
        return Err(CodeError::Construction(format!(
            "toric code d={d}: expected n={} got {n}",
            2 * d * d
        )));
    }
    let hx = BitMatrix::from_rows_of_ones(tiling.num_faces(), n, &tiling.face_edges);
    let hz = BitMatrix::from_rows_of_ones(tiling.num_vertices(), n, &tiling.vertex_edges);
    let code = CssCode::new(String::new(), CodeFamily::ToricSurface { d }, hx, hz)?;
    Ok(rename_with_params(code, "toric surface"))
}

/// Builds the toric 6.6.6 color code at scale `m` (`n = 6m²`) from the
/// Euclidean triangle group `[3,6]` with relator `(abc)^{2m}`.
///
/// This is the flat-geometry color-code baseline used in place of the
/// paper's planar triangular color code (substitution documented in
/// DESIGN.md): same 6.6.6 lattice, periodic instead of open boundary.
///
/// # Errors
///
/// Returns [`CodeError::Construction`] if the quotient is degenerate.
///
/// # Panics
///
/// Panics if `m < 2`.
pub fn toric_color_code(m: usize) -> Result<CssCode, CodeError> {
    assert!(m >= 2, "toric color code needs m >= 2");
    let rel = word::pow(&ABC.to_vec(), 2 * m);
    let pres = triangle_group(3, 6, &[rel]);
    let table = enumerate(&pres, 400 * m * m + 20_000)?;
    let tiling = ColorTiling::from_triangle_group(&table, 3, 6)
        .map_err(|e| CodeError::Construction(e.to_string()))?;
    color_code_from_tiling(
        &tiling,
        6 * m * m,
        CodeFamily::ToricColor { m },
        "toric 6.6.6 color",
    )
}

fn rename_with_params(code: CssCode, label: &str) -> CssCode {
    let name = format!("[[{},{}]] {label}", code.n(), code.k());
    // CssCode is immutable after construction; rebuild with the final
    // name (cheap relative to enumeration).
    let mut rebuilt = CssCode::new(
        name,
        code.family().clone(),
        code.hx().clone(),
        code.hz().clone(),
    )
    .expect("validated code stays valid");
    if let Some(colors) = code.check_colors() {
        rebuilt = rebuilt
            .with_check_colors(colors.to_vec())
            .expect("validated colors stay valid");
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::estimate_distances;
    use qec_group::PlaqColor;

    #[test]
    fn smallest_55_surface_code_matches_paper() {
        // Paper Table IV: [[30, 8, 3, 3]] from the {5,5} subfamily.
        let spec = &SURFACE_REGISTRY[12];
        assert_eq!((spec.r, spec.s, spec.expected_n), (5, 5, 30));
        let code = hyperbolic_surface_code(spec).unwrap();
        assert_eq!(code.n(), 30);
        assert_eq!(code.k(), 8);
        code.logicals().verify(&code).unwrap();
        let d = estimate_distances(code.hx(), code.hz(), 40, 7);
        assert_eq!((d.dx, d.dz), (3, 3));
    }

    #[test]
    fn small_45_surface_code_matches_paper() {
        // Paper Table IV: [[60, 8, 6, 4]] from the {4,5} subfamily.
        let spec = &SURFACE_REGISTRY[0];
        let code = hyperbolic_surface_code(spec).unwrap();
        assert_eq!(code.n(), 60);
        assert_eq!(code.k(), 8);
        let d = estimate_distances(code.hx(), code.hz(), 60, 11);
        // dX (faces are X checks): X logicals weight 6, Z logicals 4.
        assert!(d.dx <= 6 && d.dz <= 6, "dx={} dz={}", d.dx, d.dz);
        assert!(d.dx >= 3 && d.dz >= 3);
    }

    #[test]
    fn toric_surface_codes() {
        for d in [2usize, 3, 4] {
            let code = toric_surface_code(d).unwrap();
            assert_eq!(code.n(), 2 * d * d);
            assert_eq!(code.k(), 2, "d={d}");
            let est = estimate_distances(code.hx(), code.hz(), 30, 5);
            assert_eq!(est.dx, d);
            assert_eq!(est.dz, d);
        }
    }

    #[test]
    fn toric_color_codes_have_k_four() {
        for m in [2usize, 3] {
            let code = toric_color_code(m).unwrap();
            assert_eq!(code.n(), 6 * m * m);
            assert_eq!(code.k(), 4, "m={m}");
            assert!(code.check_colors().is_some());
            code.logicals().verify(&code).unwrap();
        }
    }

    #[test]
    fn smallest_hyperbolic_color_code() {
        let spec = &COLOR_REGISTRY[0];
        let code = hyperbolic_color_code(spec).unwrap();
        assert_eq!(code.n(), 96);
        assert!(code.k() > 0);
        code.logicals().verify(&code).unwrap();
        // Every qubit touches one plaquette of each color.
        let colors = code.check_colors().unwrap();
        let mut per_qubit = vec![[0usize; 3]; code.n()];
        for (i, color) in colors.iter().enumerate() {
            let slot = match color {
                PlaqColor::Red => 0,
                PlaqColor::Green => 1,
                PlaqColor::Blue => 2,
            };
            for q in code.x_support(i) {
                per_qubit[q][slot] += 1;
            }
        }
        assert!(per_qubit.iter().all(|c| *c == [1, 1, 1]));
    }

    #[test]
    fn registry_specs_have_sane_shapes() {
        for spec in SURFACE_REGISTRY {
            assert!(spec.r >= 4 && spec.s >= 5);
            // Hyperbolic condition 1/r + 1/s < 1/2.
            assert!(2 * (spec.r + spec.s) < spec.r * spec.s);
        }
        for spec in COLOR_REGISTRY {
            assert_eq!(spec.s % 2, 0, "color codes need even s");
        }
    }
}
