#!/usr/bin/env bash
# Hermetic CI for the fpn-repro workspace.
#
# The workspace has zero external dependencies, so everything builds
# and tests with --offline: a network-less container is the expected
# environment, not a degraded one.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --release --offline --workspace
# --workspace so every crate's unit tests run, not just the root
# package's integration tests.
cargo test -q --offline --workspace

# Quick benchmark smoke run: exercises the batched decode hot path and
# the per-stage timing harness end to end (1k shots keeps it a few
# seconds; the JSON lines double as a CI artifact). The run must clear
# both perf gates — pass_2x (decode_into ≥2x vs decode) and pass_oracle
# (PathOracle ≥3x vs per-shot Dijkstra, bit-identical corrections) —
# and leave the BENCH_3.json artifact behind.
bench_out=$(cargo run --release --offline -p qec-bench -- --shots 1000 | tee /dev/stderr)
grep -q '"pass_2x":true' <<<"$bench_out"
grep -q '"pass_oracle":true' <<<"$bench_out"
grep -q '"identical":true' <<<"$bench_out"
test -s BENCH_3.json
