#!/usr/bin/env bash
# Hermetic CI for the fpn-repro workspace.
#
# The workspace has zero external dependencies, so everything builds
# and tests with --offline: a network-less container is the expected
# environment, not a degraded one.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
