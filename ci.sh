#!/usr/bin/env bash
# Hermetic CI for the fpn-repro workspace.
#
# The workspace has zero external dependencies, so everything builds
# and tests with --offline: a network-less container is the expected
# environment, not a degraded one.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --release --offline --workspace
# --workspace so every crate's unit tests run, not just the root
# package's integration tests.
cargo test -q --offline --workspace

# Quick benchmark smoke run: exercises the batched decode hot path and
# the per-stage timing harness end to end (1k shots keeps it a few
# seconds; the JSON lines double as a CI artifact).
cargo run --release --offline -p qec-bench -- --shots 1000
