#!/usr/bin/env bash
# Hermetic CI for the fpn-repro workspace.
#
# The workspace has zero external dependencies, so everything builds
# and tests with --offline: a network-less container is the expected
# environment, not a degraded one.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --release --offline --workspace
# --workspace so every crate's unit tests run, not just the root
# package's integration tests.
cargo test -q --offline --workspace

# Differential path-tier tests: the lazy SparsePathFinder must match
# the dense PathOracle and on-demand Dijkstra bitwise, and all three
# tiers must decode identically on every fixture DEM (including the
# hyperbolic one above the dense-oracle guard).
cargo test -q --offline --test properties sparse_finder_matches_oracle_and_dijkstra_on_random_graphs
cargo test -q --offline --test properties path_tiers_agree

# Differential streaming-service tests: qec-serve corrections must be
# bit-identical to offline decode_into and reproduce run_ber's failure
# counts on the d=5 surface and hyperbolic fixtures across 1/2/4
# shards, and the bounded queue must reject (WouldBlock) rather than
# grow under backpressure.
cargo test -q --offline --test serve

# Differential blossom fuzzing at the full release budget: 5k random
# matching instances (plus a second 2.5k stream) through the pooled
# incremental solver vs. the reference exact solver, with dual
# certificates checked after every solve and shrunk reproducers on
# failure (see crates/testkit/tests/blossom_fuzz.rs).
QEC_BLOSSOM_FUZZ_CASES=5000 cargo test -q --release --offline \
    -p qec-testkit --test blossom_fuzz

# Differential sparse-blossom fuzzing at the full release budget: 5k
# random CSR decoding graphs (path-derived, boundary-heavy and
# degenerate-tie shapes, plus a second 2.5k stream) through the
# graph-native sparse solver vs. the dense complete-pricing baseline,
# comparing total matching weight under the fixed-point quantization,
# with shrunk reproducers on failure (see
# crates/testkit/tests/sparse_blossom_fuzz.rs).
QEC_SPARSE_BLOSSOM_FUZZ_CASES=5000 cargo test -q --release --offline \
    -p qec-testkit --test sparse_blossom_fuzz

# Differential BP+OSD fuzzing at the full release budget: 2k random
# sparse hypergraphs (degenerate, disconnected and overcomplete shapes
# included, plus a second 1k stream) asserting that every correction
# exactly reproduces its syndrome and that the OSD solution's weight
# never exceeds the BP hard decision's, with shrunk reproducers on
# failure (see crates/testkit/tests/bp_osd_fuzz.rs).
QEC_BP_OSD_FUZZ_CASES=2000 cargo test -q --release --offline \
    -p qec-testkit --test bp_osd_fuzz

# Quick benchmark smoke run with qec-obs tracing enabled: exercises
# the batched decode hot path and the per-stage timing harness end to
# end (1k shots keeps it a few seconds; the JSON lines double as a CI
# artifact). The run must clear every perf gate — pass_2x
# (decode_into ≥2x vs decode), pass_oracle (PathOracle ≥3x vs per-shot
# Dijkstra), pass_sparse (SparsePathFinder ≥2x vs per-shot Dijkstra on
# a hyperbolic DEM above the dense-oracle guard) and pass_obs_overhead
# (per-batch tracing within 10% of the untraced decode stage), each
# with bit-identical corrections — and leave the BENCH_9.json artifact
# behind. The pass_blossom gate additionally requires the pooled
# incremental blossom tier to clear 2x over the reference exact solver
# on the hyperbolic fixture's real matching instances, the
# pass_sparse_blossom gate requires the graph-native SparseGraph
# matching strategy to clear 2x over the dense complete-pricing
# pipeline end to end on the same fixture, and the pass_serve gate
# requires the streaming service to sustain the throughput floor on
# the hyperbolic fixture with corrections bit-identical to offline
# decode_into. The pass_bp_osd gate requires the BP+OSD hypergraph
# tier to return a syndrome-exact correction for 100% of the
# hyperbolic ground-truth shots with zero give-ups. The
# pass_telemetry_overhead gate requires the per-request windowed
# recording the serve worker performs (heartbeats + rolling-window
# samples) to stay within 10% of the bare decode loop with
# bit-identical corrections.
mkdir -p target
trace_file=target/obs_trace.jsonl
bench_out=$(cargo run --release --offline -p qec-bench -- \
    --shots 1000 --out BENCH_10.json --trace "$trace_file" | tee /dev/stderr)
grep -q '"pass_2x":true' <<<"$bench_out"
grep -q '"pass_oracle":true' <<<"$bench_out"
grep -q '"pass_sparse":true' <<<"$bench_out"
grep -q '"pass_blossom":true' <<<"$bench_out"
grep -q '"pass_sparse_blossom":true' <<<"$bench_out"
grep -q '"pass_obs_overhead":true' <<<"$bench_out"
grep -q '"pass_serve":true' <<<"$bench_out"
grep -q '"pass_bp_osd":true' <<<"$bench_out"
grep -q '"pass_telemetry_overhead":true' <<<"$bench_out"
grep -q '"identical":true' <<<"$bench_out"
# Every gate must hold, including any added later: a record carrying
# any "pass_*":false fails CI outright (greps above pin the gates we
# know by name; this catches the ones we forgot to list).
if grep -E '"pass_[a-z0-9_]+":false' <<<"$bench_out"; then
    echo "ci.sh: benchmark gate failed (pass_* flag is false)" >&2
    exit 1
fi
# Records must carry the shared schema header.
if grep -vq '"bench_schema":' <<<"$bench_out"; then
    echo "ci.sh: bench record missing bench_schema header" >&2
    exit 1
fi
test -s BENCH_10.json

# The bench run's structured trace must be non-empty, well-formed
# JSON lines with balanced span enter/close nesting, must contain the
# service's per-request spans from the serve throughput bench, and
# must carry a sane minimum event count (a short-but-valid trace means
# instrumentation silently fell off a hot path).
test -s "$trace_file"
grep -q '"name":"serve.request"' "$trace_file"
cargo run --release --offline -p qec-obs --bin obs_validate -- \
    "$trace_file" --min-events 100

# Live telemetry plane smoke: a real DecodeService with the HTTP
# endpoint on loopback — scrape /metrics, /healthz and /snapshot over
# actual TCP and fail on malformed exposition, invalid health JSON or
# an unhealthy verdict (the zero-dep stand-in for curl in a deploy
# pipeline).
cargo run --release --offline -p qec-bench --bin telemetry_smoke

# The trace/bench analyzer must roll the smoke trace up (per-span-name
# table + critical path, and the flamegraph collapsed-stack form) and
# read the whole BENCH_*.json trajectory without choking; regression
# flags are informational, parse failures are not.
cargo run --release --offline -p qec-obs --bin obs_report -- \
    --trace "$trace_file" > /dev/null
cargo run --release --offline -p qec-obs --bin obs_report -- \
    --trace "$trace_file" --collapse > /dev/null
cargo run --release --offline -p qec-obs --bin obs_report -- \
    --bench BENCH_*.json
